package cpu

import (
	"fmt"
	"math"

	"repro/internal/x86"
)

// This file is the fused execution engine (tier 2). runFused is a
// line-for-line mirror of runFast in machine_fast.go operating on the
// fused finst stream from fuse.go: singleton entries carry the same
// predecoded fields (finst embeds dinst) and execute through identical
// code, and group heads dispatch once for two or three constituents
// whose operand recipes were fully resolved at fuse time.
//
// The invariants that keep this tier bit-identical to the oracle:
//   - each constituent charges its own precomputed base cost cs[pc+i]
//     in original program order (float accumulation order is part of
//     the architecture here), with memory penalties interleaved exactly
//     where the unfused engines charge them;
//   - Insts/BytesFetched are integer accumulators, so a group batches
//     them;
//   - fr.pc is set to the constituent's original index before any step
//     that can trap, so Trap{Fn,PC} and fault resume points match;
//   - the fused stream is same-indexed with the decoded stream, so
//     branch targets, return addresses, and epoch resume need no
//     translation, and branching into the middle of a group lands on a
//     plain singleton copy of that instruction.
//
// Any semantic change in runSlow/runFast must be mirrored here; the
// differential tests in machine_fast_test.go, fuse_test.go, and
// internal/rt pin all three engines against each other.

// runFused executes using the fused stream. Semantics, trap behaviour,
// and Stats accounting are bit-identical to runSlow and runFast.
func (m *Machine) runFused(fp *fusedProg) error {
	dec := m.Prog.decoded()
	dcost := m.instCosts(dec)
	var nInsts, nBytes uint64
	defer func() {
		m.Stats.Insts += nInsts
		m.Stats.BytesFetched += nBytes
	}()
frames:
	for len(m.frames) > 0 {
		fr := &m.frames[len(m.frames)-1]
		insts := fp.funcs[fr.fn].insts
		cs := dcost[fr.fn][:len(insts)] // same length as the decoded stream
		for {
			pc := fr.pc
			if uint(pc) >= uint(len(insts)) {
				return fmt.Errorf("cpu: pc %d out of range in %q", pc, m.Prog.Funcs[fr.fn].Name)
			}
			in := &insts[pc]

			nInsts++
			nBytes += uint64(in.ilen)
			m.Stats.Cycles += cs[pc]

			next := pc + 1
			switch in.op {
			case opGroup:
				steps := in.steps
				n := len(steps)
				nInsts += uint64(n - 1)
				nBytes += uint64(in.gxBytes)
				next = pc + n
				for i := 0; i < n; i++ {
					st := &steps[i]
					if i != 0 {
						m.Stats.Cycles += cs[pc+i]
					}
					// Memory and trap steps set fr.pc = pc+i themselves, so
					// faults attribute to the constituent's original index;
					// pure register steps skip that store.
					switch st.kind {
					case fsMovRR:
						m.Regs[st.dst&15] = m.Regs[st.src&15] & wmask[st.w&31]
					case fsMovRI:
						m.Regs[st.dst&15] = uint64(st.imm) & wmask[st.w&31]
					case fsExt:
						v := m.Regs[st.src&15] & wmask[st.srcW&31]
						if st.op == x86.MOVSX {
							v = signExtend(v, st.srcW)
						}
						m.Regs[st.dst&15] = v & wmask[st.w&31]
					case fsLea:
						m.Regs[st.dst&15] = m.eaDRest(st.mem, false) & wmask[st.w&31]

					case fsAddRR:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := m.Regs[st.src&15] & wmask[st.w&31]
						res := a + b
						m.setFlagsAdd(a, b, res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsAddRI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := uint64(st.imm) & wmask[st.w&31]
						res := a + b
						m.setFlagsAdd(a, b, res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsSubRR:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := m.Regs[st.src&15] & wmask[st.w&31]
						res := a - b
						m.setFlagsSub(a, b, res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsSubRI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := uint64(st.imm) & wmask[st.w&31]
						res := a - b
						m.setFlagsSub(a, b, res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsAndRR:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) & (m.Regs[st.src&15] & wmask[st.w&31])
						m.setFlagsLogic(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsAndRI:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) & (uint64(st.imm) & wmask[st.w&31])
						m.setFlagsLogic(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsOrRR:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) | (m.Regs[st.src&15] & wmask[st.w&31])
						m.setFlagsLogic(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsOrRI:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) | (uint64(st.imm) & wmask[st.w&31])
						m.setFlagsLogic(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsXorRR:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) ^ (m.Regs[st.src&15] & wmask[st.w&31])
						m.setFlagsLogic(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsXorRI:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) ^ (uint64(st.imm) & wmask[st.w&31])
						m.setFlagsLogic(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsMulRR:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) * (m.Regs[st.src&15] & wmask[st.w&31])
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsMulRI:
						res := (m.Regs[st.dst&15] & wmask[st.w&31]) * (uint64(st.imm) & wmask[st.w&31])
						m.Regs[st.dst&15] = res & wmask[st.w&31]

					case fsShlRI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						c := uint(uint64(st.imm)&0xFF) & (widthBits(st.w) - 1)
						res := maskW(a<<c, st.w)
						m.zf = res == 0
						m.sf = signBit(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsShrRI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						c := uint(uint64(st.imm)&0xFF) & (widthBits(st.w) - 1)
						res := maskW(a>>c, st.w)
						m.zf = res == 0
						m.sf = signBit(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsSarRI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						c := uint(uint64(st.imm)&0xFF) & (widthBits(st.w) - 1)
						res := maskW(uint64(int64(signExtend(a, st.w))>>c), st.w)
						m.zf = res == 0
						m.sf = signBit(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]
					case fsShift:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						var cnt uint64
						if st.src != dRegNone {
							cnt = m.Regs[st.src&15] & 0xFF
						} else {
							cnt = uint64(st.imm) & 0xFF
						}
						bitsN := widthBits(st.w)
						c := uint(cnt) & (bitsN - 1)
						var res uint64
						switch st.op {
						case x86.SHL:
							res = a << c
						case x86.SHR:
							res = a >> c
						case x86.SAR:
							res = uint64(int64(signExtend(a, st.w)) >> c)
						case x86.ROL:
							res = a<<c | a>>(bitsN-c)
						default: // ROR
							res = a>>c | a<<(bitsN-c)
						}
						res = maskW(res, st.w)
						m.zf = res == 0
						m.sf = signBit(res, st.w)
						m.Regs[st.dst&15] = res & wmask[st.w&31]

					case fsCmp:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := m.Regs[st.src&15] & wmask[st.w&31]
						m.setFlagsSub(a, b, a-b, st.w)
					case fsCmpI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := uint64(st.imm) & wmask[st.w&31]
						m.setFlagsSub(a, b, a-b, st.w)
					case fsCmpM:
						fr.pc = pc + i
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b, err := m.loadFast(m.eaD(st.mem), int(st.w))
						if err != nil {
							return err
						}
						m.setFlagsSub(a, b, a-b, st.w)
					case fsTest:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := m.Regs[st.src&15] & wmask[st.w&31]
						m.setFlagsLogic(a&b, st.w)
					case fsTestI:
						a := m.Regs[st.dst&15] & wmask[st.w&31]
						b := uint64(st.imm) & wmask[st.w&31]
						m.setFlagsLogic(a&b, st.w)

					case fsSetcc:
						v := uint64(0)
						if m.cond(st.cond) {
							v = 1
						}
						m.Regs[st.dst&15] = v
					case fsCmov:
						v := m.Regs[st.src&15] & wmask[st.w&31]
						if m.cond(st.cond) {
							m.Regs[st.dst&15] = v
						}

					case fsLoad:
						fr.pc = pc + i
						v, err := m.loadFast(m.eaD(st.mem), int(st.w))
						if err != nil {
							return err
						}
						m.Regs[st.dst&15] = v & wmask[st.w&31]
					case fsLoadZX:
						fr.pc = pc + i
						v, err := m.loadFast(m.eaD(st.mem), int(st.srcW))
						if err != nil {
							return err
						}
						m.Regs[st.dst&15] = v & wmask[st.w&31]
					case fsLoadSX:
						fr.pc = pc + i
						v, err := m.loadFast(m.eaD(st.mem), int(st.srcW))
						if err != nil {
							return err
						}
						m.Regs[st.dst&15] = signExtend(v, st.srcW) & wmask[st.w&31]
					case fsStoreR:
						fr.pc = pc + i
						v := m.Regs[st.src&15] & wmask[st.w&31]
						if err := m.storeFast(m.eaD(st.mem), int(st.w), v); err != nil {
							return err
						}
					case fsStoreI:
						fr.pc = pc + i
						v := uint64(st.imm) & wmask[st.w&31]
						if err := m.storeFast(m.eaD(st.mem), int(st.w), v); err != nil {
							return err
						}

					case fsFMovXX:
						m.XmmLo[st.dst] = m.XmmLo[st.src]
					case fsFLoad:
						fr.pc = pc + i
						v, err := m.loadFast(m.eaD(st.mem), 8)
						if err != nil {
							return err
						}
						m.XmmLo[st.dst] = v
					case fsFStore:
						fr.pc = pc + i
						if err := m.storeFast(m.eaD(st.mem), 8, m.XmmLo[st.src]); err != nil {
							return err
						}
					case fsFAdd:
						a := math.Float64frombits(m.XmmLo[st.dst])
						b := math.Float64frombits(m.XmmLo[st.src])
						m.XmmLo[st.dst] = math.Float64bits(a + b)
					case fsFSub:
						a := math.Float64frombits(m.XmmLo[st.dst])
						b := math.Float64frombits(m.XmmLo[st.src])
						m.XmmLo[st.dst] = math.Float64bits(a - b)
					case fsFMul:
						a := math.Float64frombits(m.XmmLo[st.dst])
						b := math.Float64frombits(m.XmmLo[st.src])
						m.XmmLo[st.dst] = math.Float64bits(a * b)
					case fsFDiv:
						a := math.Float64frombits(m.XmmLo[st.dst])
						b := math.Float64frombits(m.XmmLo[st.src])
						m.XmmLo[st.dst] = math.Float64bits(a / b)
					case fsFMin:
						a := math.Float64frombits(m.XmmLo[st.dst])
						b := math.Float64frombits(m.XmmLo[st.src])
						m.XmmLo[st.dst] = math.Float64bits(math.Min(a, b))
					case fsFMax:
						a := math.Float64frombits(m.XmmLo[st.dst])
						b := math.Float64frombits(m.XmmLo[st.src])
						m.XmmLo[st.dst] = math.Float64bits(math.Max(a, b))

					case fsVMovXX:
						m.XmmLo[st.dst] = m.XmmLo[st.src]
						m.XmmHi[st.dst] = m.XmmHi[st.src]
					case fsVLoad:
						fr.pc = pc + i
						addr := m.eaD(st.mem)
						lo, err := m.loadFast(addr, 8)
						if err != nil {
							return err
						}
						hi, err := m.loadFast(addr+8, 8)
						if err != nil {
							return err
						}
						m.XmmLo[st.dst] = lo
						m.XmmHi[st.dst] = hi
					case fsVStore:
						fr.pc = pc + i
						addr := m.eaD(st.mem)
						if err := m.storeFast(addr, 8, m.XmmLo[st.src]); err != nil {
							return err
						}
						if err := m.storeFast(addr+8, 8, m.XmmHi[st.src]); err != nil {
							return err
						}

					case fsTrapif:
						if m.cond(st.cond) {
							fr.pc = pc + i
							return m.trap(TrapBounds, 0)
						}
					case fsJcc:
						taken := m.cond(st.cond)
						m.predictBranch(fr.fn, pc+i, taken)
						if taken {
							next = int(st.target)
						}
					case fsJmp:
						next = int(st.target)
					}
				}

			case x86.NOP:

			case x86.MOV:
				var v uint64
				if in.src.kind == dReg {
					v = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if v, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = v & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, v); err != nil {
					return err
				}
			case x86.MOVZX:
				v, err := m.readOpD(&in.src, in.srcW)
				if err != nil {
					return err
				}
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = v & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, v); err != nil {
					return err
				}
			case x86.MOVSX:
				v, err := m.readOpD(&in.src, in.srcW)
				if err != nil {
					return err
				}
				v = signExtend(v, in.srcW) & wmask[in.w&31]
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = v
				} else if err := m.writeOpDRest(&in.dst, in.w, v); err != nil {
					return err
				}
			case x86.LEA:
				v := m.eaDRest(&in.src, false)
				if err := m.writeOpD(&in.dst, in.w, maskW(v, in.w)); err != nil {
					return err
				}
			case x86.XCHG:
				a, _ := m.readOpD(&in.dst, in.w)
				b, _ := m.readOpD(&in.src, in.w)
				if err := m.writeOpD(&in.dst, in.w, b); err != nil {
					return err
				}
				if err := m.writeOpD(&in.src, in.w, a); err != nil {
					return err
				}
			case x86.CMOV:
				v, err := m.readOpD(&in.src, in.w)
				if err != nil {
					return err
				}
				if m.cond(in.cond) {
					if err := m.writeOpD(&in.dst, in.w, v); err != nil {
						return err
					}
				}
			case x86.PUSH:
				var v uint64
				if in.dst.kind == dReg {
					v = m.Regs[in.dst.reg&15]
				} else {
					var err error
					if v, err = m.readOpDRest(&in.dst, x86.W64); err != nil {
						return err
					}
				}
				m.Regs[x86.RSP] -= 8
				if err := m.storeFast(m.Regs[x86.RSP], 8, v); err != nil {
					return err
				}
			case x86.POP:
				v, err := m.loadFast(m.Regs[x86.RSP], 8)
				if err != nil {
					return err
				}
				m.Regs[x86.RSP] += 8
				if in.dst.kind == dReg {
					m.Regs[in.dst.reg&15] = v
				} else if err := m.writeOpDRest(&in.dst, x86.W64, v); err != nil {
					return err
				}

			case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.IMUL, x86.MULX:
				var a, b uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				if in.src.kind == dReg {
					b = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if b, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				var res uint64
				switch in.op {
				case x86.ADD:
					res = a + b
					m.setFlagsAdd(a, b, res, in.w)
				case x86.SUB:
					res = a - b
					m.setFlagsSub(a, b, res, in.w)
				case x86.AND:
					res = a & b
					m.setFlagsLogic(res, in.w)
				case x86.OR:
					res = a | b
					m.setFlagsLogic(res, in.w)
				case x86.XOR:
					res = a ^ b
					m.setFlagsLogic(res, in.w)
				case x86.IMUL, x86.MULX:
					res = a * b
				}
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = res & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, res); err != nil {
					return err
				}
			case x86.NOT:
				a, err := m.readOpD(&in.dst, in.w)
				if err != nil {
					return err
				}
				if err := m.writeOpD(&in.dst, in.w, ^a); err != nil {
					return err
				}
			case x86.NEG:
				a, err := m.readOpD(&in.dst, in.w)
				if err != nil {
					return err
				}
				res := -a
				m.setFlagsSub(0, a, res, in.w)
				if err := m.writeOpD(&in.dst, in.w, res); err != nil {
					return err
				}
			case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
				var a, cnt uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				switch in.src.kind {
				case dReg:
					cnt = m.Regs[in.src.reg&15] & 0xFF
				case dImm:
					cnt = uint64(in.src.imm) & 0xFF
				default:
					var err error
					if cnt, err = m.readOpDRest(&in.src, x86.W8); err != nil {
						return err
					}
				}
				bitsN := widthBits(in.w)
				c := uint(cnt) & (bitsN - 1)
				var res uint64
				switch in.op {
				case x86.SHL:
					res = a << c
				case x86.SHR:
					res = a >> c
				case x86.SAR:
					res = uint64(int64(signExtend(a, in.w)) >> c)
				case x86.ROL:
					res = a<<c | a>>(bitsN-c)
				case x86.ROR:
					res = a>>c | a<<(bitsN-c)
				}
				res = maskW(res, in.w)
				m.zf = res == 0
				m.sf = signBit(res, in.w)
				if in.dst.kind == dReg && in.w >= x86.W32 {
					m.Regs[in.dst.reg&15] = res & wmask[in.w&31]
				} else if err := m.writeOpDRest(&in.dst, in.w, res); err != nil {
					return err
				}
			case x86.CMP:
				var a, b uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				if in.src.kind == dReg {
					b = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if b, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				m.setFlagsSub(a, b, a-b, in.w)
			case x86.TEST:
				var a, b uint64
				if in.dst.kind == dReg {
					a = m.Regs[in.dst.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if a, err = m.readOpDRest(&in.dst, in.w); err != nil {
						return err
					}
				}
				if in.src.kind == dReg {
					b = m.Regs[in.src.reg&15] & wmask[in.w&31]
				} else {
					var err error
					if b, err = m.readOpDRest(&in.src, in.w); err != nil {
						return err
					}
				}
				m.setFlagsLogic(a&b, in.w)
			case x86.SETCC:
				v := uint64(0)
				if m.cond(in.cond) {
					v = 1
				}
				if err := m.writeOpD(&in.dst, x86.W64, v); err != nil {
					return err
				}
			case x86.CQO:
				if in.w == x86.W32 {
					if int32(m.Regs[x86.RAX]) < 0 {
						m.Regs[x86.RDX] = 0xFFFFFFFF
					} else {
						m.Regs[x86.RDX] = 0
					}
				} else {
					if int64(m.Regs[x86.RAX]) < 0 {
						m.Regs[x86.RDX] = ^uint64(0)
					} else {
						m.Regs[x86.RDX] = 0
					}
				}
			case x86.IDIV, x86.DIV:
				d, err := m.readOpD(&in.dst, in.w)
				if err != nil {
					return err
				}
				if maskW(d, in.w) == 0 {
					return m.trap(TrapDivZero, 0)
				}
				if in.op == x86.IDIV {
					if in.w == x86.W32 {
						a := int32(m.Regs[x86.RAX])
						b := int32(d)
						if a == math.MinInt32 && b == -1 {
							return m.trap(TrapOverflow, 0)
						}
						m.Regs[x86.RAX] = uint64(uint32(a / b))
						m.Regs[x86.RDX] = uint64(uint32(a % b))
					} else {
						a := int64(m.Regs[x86.RAX])
						b := int64(d)
						if a == math.MinInt64 && b == -1 {
							return m.trap(TrapOverflow, 0)
						}
						m.Regs[x86.RAX] = uint64(a / b)
						m.Regs[x86.RDX] = uint64(a % b)
					}
				} else {
					if in.w == x86.W32 {
						a := uint32(m.Regs[x86.RAX])
						b := uint32(d)
						m.Regs[x86.RAX] = uint64(a / b)
						m.Regs[x86.RDX] = uint64(a % b)
					} else {
						a := m.Regs[x86.RAX]
						m.Regs[x86.RAX] = a / d
						m.Regs[x86.RDX] = a % d
					}
				}
			case x86.POPCNT, x86.LZCNT, x86.TZCNT:
				v, err := m.readOpD(&in.src, in.w)
				if err != nil {
					return err
				}
				res := bitCount(in.op, v, in.w)
				if err := m.writeOpD(&in.dst, in.w, res); err != nil {
					return err
				}

			case x86.JMP:
				next = int(in.dst.imm)
			case x86.JCC:
				taken := m.cond(in.cond)
				m.predictBranch(fr.fn, pc, taken)
				if taken {
					next = int(in.dst.imm)
				}
			case x86.CALLFN:
				if len(m.frames) >= m.MaxCallDepth {
					return m.trap(TrapCallDepth, 0)
				}
				m.Regs[x86.RSP] -= 8
				if err := m.storeFast(m.Regs[x86.RSP], 8, uint64(pc+1)); err != nil {
					return err
				}
				fr.pc = next
				m.frames = append(m.frames, frame{fn: int(in.dst.imm), pc: 0})
				continue frames
			case x86.CALLREG:
				m.Stats.Cycles += m.Cost.IndirectSeq
				slot, err := m.readOpD(&in.dst, x86.W64)
				if err != nil {
					return err
				}
				if slot >= uint64(len(m.Prog.Table)) {
					return m.trap(TrapTableOOB, 0)
				}
				ent := m.Prog.Table[slot]
				if ent.FuncIdx == NullTableEntry {
					return m.trap(TrapTableNull, 0)
				}
				if ent.SigID != int(in.src.imm) {
					return m.trap(TrapTableSig, 0)
				}
				if len(m.frames) >= m.MaxCallDepth {
					return m.trap(TrapCallDepth, 0)
				}
				m.Regs[x86.RSP] -= 8
				if err := m.storeFast(m.Regs[x86.RSP], 8, uint64(pc+1)); err != nil {
					return err
				}
				fr.pc = next
				m.frames = append(m.frames, frame{fn: ent.FuncIdx, pc: 0})
				continue frames
			case x86.CALLHOST:
				idx := int(in.dst.imm)
				if idx < 0 || idx >= len(m.Hosts) {
					return fmt.Errorf("cpu: host index %d out of range", idx)
				}
				fr.pc = next
				if err := m.Hosts[idx](m); err != nil {
					return err
				}
				continue frames
			case x86.RET:
				if _, err := m.loadFast(m.Regs[x86.RSP], 8); err != nil {
					return err
				}
				m.Regs[x86.RSP] += 8
				m.frames = m.frames[:len(m.frames)-1]
				continue frames

			case x86.UD2:
				return m.trap(TrapUD, 0)
			case x86.TRAPIF:
				if m.cond(in.cond) {
					return m.trap(TrapBounds, 0)
				}
			case x86.EPOCH:
				if m.EpochEnabled && m.Stats.Cycles >= m.EpochDeadline {
					fr.pc = next
					return m.trap(TrapEpoch, 0)
				}

			case x86.ENDBR, x86.BTBFLUSH, x86.INTERLOCK:
				// Hardening pseudo-ops: architecturally inert, cost only.

			case x86.WRGSBASE:
				m.GSBase = m.Regs[in.dst.reg]
			case x86.RDGSBASE:
				m.Regs[in.dst.reg] = m.GSBase
			case x86.WRFSBASE:
				m.FSBase = m.Regs[in.dst.reg]
			case x86.WRPKRU:
				m.PKRU = uint32(m.Regs[x86.RAX])
			case x86.RDPKRU:
				m.Regs[x86.RAX] = uint64(m.PKRU)

			case x86.MOVSD:
				if err := m.execMOVSDD(&in.dinst); err != nil {
					return err
				}
			case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.MINSD, x86.MAXSD:
				if err := m.execFBinD(&in.dinst); err != nil {
					return err
				}
			case x86.NEGSD:
				m.XmmLo[in.dst.reg] ^= 1 << 63
			case x86.ABSSD:
				m.XmmLo[in.dst.reg] &^= 1 << 63
			case x86.JTAB:
				idx, err := m.readOpD(&in.dst, x86.W64)
				if err != nil {
					return err
				}
				m.Stats.Cycles += m.Cost.Load + m.Cost.Branch
				m.Stats.Branches++
				if idx < uint64(len(in.targets)) {
					next = in.targets[idx]
				} else {
					next = int(in.src.imm)
				}
			case x86.SQRTSD:
				v, err := m.readFD(&in.src)
				if err != nil {
					return err
				}
				m.XmmLo[in.dst.reg] = math.Float64bits(math.Sqrt(v))
			case x86.UCOMISD:
				a, err := m.readFD(&in.dst)
				if err != nil {
					return err
				}
				b, err := m.readFD(&in.src)
				if err != nil {
					return err
				}
				switch {
				case math.IsNaN(a) || math.IsNaN(b):
					m.zf, m.cf = true, true
				case a == b:
					m.zf, m.cf = true, false
				case a < b:
					m.zf, m.cf = false, true
				default:
					m.zf, m.cf = false, false
				}
				m.sf, m.of = false, false
			case x86.CVTSI2SD:
				v, err := m.readOpD(&in.src, in.w)
				if err != nil {
					return err
				}
				var fv float64
				if in.w == x86.W32 {
					fv = float64(int32(v))
				} else {
					fv = float64(int64(v))
				}
				m.XmmLo[in.dst.reg] = math.Float64bits(fv)
			case x86.CVTTSD2SI:
				v, err := m.readFD(&in.src)
				if err != nil {
					return err
				}
				if math.IsNaN(v) {
					return m.trap(TrapOverflow, 0)
				}
				t := math.Trunc(v)
				if in.w == x86.W32 {
					if t < math.MinInt32 || t > math.MaxInt32 {
						return m.trap(TrapOverflow, 0)
					}
					m.Regs[in.dst.reg] = uint64(uint32(int32(t)))
				} else {
					if t < -9.223372036854776e18 || t >= 9.223372036854776e18 {
						return m.trap(TrapOverflow, 0)
					}
					m.Regs[in.dst.reg] = uint64(int64(t))
				}
			case x86.MOVQXR:
				m.Regs[in.dst.reg] = m.XmmLo[in.src.reg]
			case x86.MOVQRX:
				m.XmmLo[in.dst.reg] = m.Regs[in.src.reg]

			case x86.MOVDQU:
				if err := m.execMOVDQUD(&in.dinst); err != nil {
					return err
				}
			case x86.PADDD:
				dl, dh := m.XmmLo[in.dst.reg], m.XmmHi[in.dst.reg]
				sl, sh := m.XmmLo[in.src.reg], m.XmmHi[in.src.reg]
				m.XmmLo[in.dst.reg] = paddd64(dl, sl)
				m.XmmHi[in.dst.reg] = paddd64(dh, sh)
			case x86.PXOR:
				m.XmmLo[in.dst.reg] ^= m.XmmLo[in.src.reg]
				m.XmmHi[in.dst.reg] ^= m.XmmHi[in.src.reg]

			default:
				return fmt.Errorf("cpu: unimplemented op %v", in.op)
			}
			fr.pc = next
		}
	}
	return nil
}
