package workloads

import "repro/internal/ir"

// Polybench returns the PolybenchC-style suite WAMR's developers
// benchmark with (§6.2): dense linear-algebra and stencil loop nests in
// f64, hand-written (these are tiny public kernels, unlike SPEC).
// Dhrystone rides along as WAMR's other suite.
func Polybench() Suite {
	return Suite{Name: "polybench", Kernels: []Kernel{
		{Name: "gemm", Build: buildPBGemm, Entry: "run", Args: []uint64{56}, TestArgs: []uint64{8}},
		{Name: "2mm", Build: buildPB2mm, Entry: "run", Args: []uint64{40}, TestArgs: []uint64{6}},
		{Name: "atax", Build: buildPBAtax, Entry: "run", Args: []uint64{420}, TestArgs: []uint64{24}},
		{Name: "bicg", Build: buildPBBicg, Entry: "run", Args: []uint64{420}, TestArgs: []uint64{24}},
		{Name: "gesummv", Build: buildPBGesummv, Entry: "run", Args: []uint64{400}, TestArgs: []uint64{20}},
		{Name: "jacobi-2d", Build: buildPBJacobi2D, Entry: "run", Args: []uint64{40}, TestArgs: []uint64{5}},
		{Name: "seidel-2d", Build: buildPBSeidel2D, Entry: "run", Args: []uint64{36}, TestArgs: []uint64{5}},
		{Name: "dhrystone", Build: buildDhrystone, Entry: "run", Args: []uint64{120000}, TestArgs: []uint64{200}},
	}}
}

// pbInit emits a setup loop filling count f64 elements at base with
// deterministic values derived from the index.
func pbInit(fb *ir.FuncBuilder, i uint32, base uint32, count int32, scale float64) {
	fb.LoopN(i, 0, count, 1, func() {
		fb.Get(i).I32(3).I32Shl()
		fb.Get(i).I32(7).I32RemS().I32(1).I32Add().F64ConvertI32S().F64(scale).F64Mul()
		fb.F64Store(base)
	})
}

// f64Checksum folds an f64 local into an i32 result exactly.
func f64Checksum(fb *ir.FuncBuilder, facc uint32) {
	fb.Get(facc).I64ReinterpretF64().I32WrapI64()
	fb.Get(facc).I64ReinterpretF64().I64(32).I64ShrU().I32WrapI64().I32Xor()
}

// buildPBGemm: C = alpha*A*B + beta*C over n x n f64 matrices.
func buildPBGemm(bool) *ir.Module {
	const dim = 64
	const aBase, bBase, cBase = 0, dim * dim * 8, 2 * dim * dim * 8
	m := ir.NewModule("gemm", pages(3*dim*dim*8+ir.PageSize), pages(3*dim*dim*8+ir.PageSize))
	const (
		n = 0
		i = 1
		j = 2
		k = 3
		s = 4 // f64 sum
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.F64)
	pbInit(fb, i, aBase, dim*dim, 0.125)
	pbInit(fb, i, bBase, dim*dim, 0.25)
	pbInit(fb, i, cBase, dim*dim, 0.5)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.F64(0).Set(s)
			fb.LoopNDyn(k, n, 0, 1, func() {
				fb.Get(i).I32(dim).I32Mul().Get(k).I32Add().I32(3).I32Shl().F64Load(aBase)
				fb.Get(k).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(bBase)
				fb.F64Mul().Get(s).F64Add().Set(s)
			})
			// C[i][j] = 1.5*sum + 1.2*C[i][j]
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl()
			fb.Get(s).F64(1.5).F64Mul()
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(cBase)
			fb.F64(1.2).F64Mul().F64Add()
			fb.F64Store(cBase)
		})
	})
	// checksum: sum of diagonal
	fb.F64(0).Set(s)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).I32(dim).I32Mul().Get(i).I32Add().I32(3).I32Shl().F64Load(cBase)
		fb.Get(s).F64Add().Set(s)
	})
	f64Checksum(fb, s)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildPB2mm: D = A*B then E = D*C (two chained matmuls).
func buildPB2mm(bool) *ir.Module {
	const dim = 48
	const aB, bB, cB, dB, eB = 0, dim * dim * 8, 2 * dim * dim * 8, 3 * dim * dim * 8, 4 * dim * dim * 8
	m := ir.NewModule("2mm", pages(5*dim*dim*8+ir.PageSize), pages(5*dim*dim*8+ir.PageSize))
	const (
		n = 0
		i = 1
		j = 2
		k = 3
		s = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.F64)
	pbInit(fb, i, aB, dim*dim, 0.1)
	pbInit(fb, i, bB, dim*dim, 0.2)
	pbInit(fb, i, cB, dim*dim, 0.3)
	mm := func(x, y, z uint32) {
		fb.LoopNDyn(i, n, 0, 1, func() {
			fb.LoopNDyn(j, n, 0, 1, func() {
				fb.F64(0).Set(s)
				fb.LoopNDyn(k, n, 0, 1, func() {
					fb.Get(i).I32(dim).I32Mul().Get(k).I32Add().I32(3).I32Shl().F64Load(x)
					fb.Get(k).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(y)
					fb.F64Mul().Get(s).F64Add().Set(s)
				})
				fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl()
				fb.Get(s)
				fb.F64Store(z)
			})
		})
	}
	mm(aB, bB, dB)
	mm(dB, cB, eB)
	fb.F64(0).Set(s)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).I32(dim).I32Mul().Get(i).I32Add().I32(3).I32Shl().F64Load(eB)
		fb.Get(s).F64Add().Set(s)
	})
	f64Checksum(fb, s)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildPBAtax: y = A^T (A x) over an n x n system.
func buildPBAtax(bool) *ir.Module {
	const dim = 512
	const aB, xB, tB, yB = 0, dim * dim * 8, dim*dim*8 + dim*8, dim*dim*8 + 2*dim*8
	m := ir.NewModule("atax", pages(dim*dim*8+3*dim*8+ir.PageSize), pages(dim*dim*8+3*dim*8+ir.PageSize))
	const (
		n = 0
		i = 1
		j = 2
		s = 3
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.F64)
	pbInit(fb, i, xB, dim, 0.01)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl()
			fb.Get(i).Get(j).I32Add().I32(1).I32Add().F64ConvertI32S().F64(1e-4).F64Mul()
			fb.F64Store(aB)
		})
	})
	// t = A x
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.F64(0).Set(s)
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(aB)
			fb.Get(j).I32(3).I32Shl().F64Load(xB)
			fb.F64Mul().Get(s).F64Add().Set(s)
		})
		fb.Get(i).I32(3).I32Shl().Get(s).F64Store(tB)
	})
	// y = A^T t
	fb.LoopNDyn(j, n, 0, 1, func() {
		fb.F64(0).Set(s)
		fb.LoopNDyn(i, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(aB)
			fb.Get(i).I32(3).I32Shl().F64Load(tB)
			fb.F64Mul().Get(s).F64Add().Set(s)
		})
		fb.Get(j).I32(3).I32Shl().Get(s).F64Store(yB)
	})
	fb.F64(0).Set(s)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).I32(3).I32Shl().F64Load(yB).Get(s).F64Add().Set(s)
	})
	f64Checksum(fb, s)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildPBBicg: the BiCG sub-kernel (two simultaneous mat-vec products).
func buildPBBicg(bool) *ir.Module {
	const dim = 512
	const aB, pB, rB, qB, sB = 0, dim * dim * 8, dim*dim*8 + dim*8, dim*dim*8 + 2*dim*8, dim*dim*8 + 3*dim*8
	m := ir.NewModule("bicg", pages(dim*dim*8+4*dim*8+ir.PageSize), pages(dim*dim*8+4*dim*8+ir.PageSize))
	const (
		n  = 0
		i  = 1
		j  = 2
		s1 = 3
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.F64)
	pbInit(fb, i, pB, dim, 0.02)
	pbInit(fb, i, rB, dim, 0.03)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl()
			fb.Get(i).I32(3).I32Mul().Get(j).I32Add().I32(1).I32Add().F64ConvertI32S().F64(2e-4).F64Mul()
			fb.F64Store(aB)
		})
	})
	// q = A p ; s = A^T r, interleaved per row.
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.F64(0).Set(s1)
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(aB)
			fb.Get(j).I32(3).I32Shl().F64Load(pB)
			fb.F64Mul().Get(s1).F64Add().Set(s1)
			// s[j] += r[i] * A[i][j]
			fb.Get(j).I32(3).I32Shl()
			fb.Get(i).I32(3).I32Shl().F64Load(rB)
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(aB)
			fb.F64Mul()
			fb.Get(j).I32(3).I32Shl().F64Load(sB)
			fb.F64Add()
			fb.F64Store(sB)
		})
		fb.Get(i).I32(3).I32Shl().Get(s1).F64Store(qB)
	})
	fb.F64(0).Set(s1)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).I32(3).I32Shl().F64Load(qB).Get(s1).F64Add().Set(s1)
		fb.Get(i).I32(3).I32Shl().F64Load(sB).Get(s1).F64Add().Set(s1)
	})
	f64Checksum(fb, s1)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildPBGesummv: y = alpha*A*x + beta*B*x.
func buildPBGesummv(bool) *ir.Module {
	const dim = 512
	const aB, bB, xB, yB = 0, dim * dim * 8, 2 * dim * dim * 8, 2*dim*dim*8 + dim*8
	m := ir.NewModule("gesummv", pages(2*dim*dim*8+2*dim*8+ir.PageSize), pages(2*dim*dim*8+2*dim*8+ir.PageSize))
	const (
		n = 0
		i = 1
		j = 2
		s = 3
		t = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.F64, ir.F64)
	pbInit(fb, i, xB, dim, 0.04)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl()
			fb.Get(i).Get(j).I32Mul().I32(13).I32RemS().I32(1).I32Add().F64ConvertI32S().F64(1e-3).F64Mul()
			fb.F64Store(aB)
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl()
			fb.Get(i).Get(j).I32Add().I32(11).I32RemS().I32(1).I32Add().F64ConvertI32S().F64(2e-3).F64Mul()
			fb.F64Store(bB)
		})
	})
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.F64(0).Set(s)
		fb.F64(0).Set(t)
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(aB)
			fb.Get(j).I32(3).I32Shl().F64Load(xB)
			fb.F64Mul().Get(s).F64Add().Set(s)
			fb.Get(i).I32(dim).I32Mul().Get(j).I32Add().I32(3).I32Shl().F64Load(bB)
			fb.Get(j).I32(3).I32Shl().F64Load(xB)
			fb.F64Mul().Get(t).F64Add().Set(t)
		})
		fb.Get(i).I32(3).I32Shl()
		fb.Get(s).F64(1.5).F64Mul().Get(t).F64(1.2).F64Mul().F64Add()
		fb.F64Store(yB)
	})
	fb.F64(0).Set(s)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).I32(3).I32Shl().F64Load(yB).Get(s).F64Add().Set(s)
	})
	f64Checksum(fb, s)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildPBJacobi2D: t timesteps of the 5-point Jacobi stencil on a
// fixed 96x96 grid (param = timesteps).
func buildPBJacobi2D(bool) *ir.Module {
	const nGrid = 96
	const aB, bB = 0, nGrid * nGrid * 8
	m := ir.NewModule("jacobi-2d", pages(2*nGrid*nGrid*8+ir.PageSize), pages(2*nGrid*nGrid*8+ir.PageSize))
	const (
		steps = 0
		t     = 1
		i     = 2
		j     = 3
		s     = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.F64)
	pbInit(fb, i, aB, nGrid*nGrid, 0.05)
	// at pushes A[i + off/nGrid][j + off%nGrid] by folding off into the
	// element index (offsets may be negative; i,j >= 1 keeps addresses
	// in bounds).
	at := func(base uint32, off int32) {
		fb.Get(i).I32(nGrid).I32Mul().Get(j).I32Add().I32(off).I32Add().I32(3).I32Shl()
		fb.F64Load(base)
	}
	fb.LoopNDyn(t, steps, 0, 1, func() {
		fb.LoopN(i, 1, nGrid-1, 1, func() {
			fb.LoopN(j, 1, nGrid-1, 1, func() {
				fb.Get(i).I32(nGrid).I32Mul().Get(j).I32Add().I32(3).I32Shl()
				at(aB, 0)
				at(aB, 1)
				fb.F64Add()
				at(aB, -1)
				fb.F64Add()
				at(aB, nGrid)
				fb.F64Add()
				at(aB, -nGrid)
				fb.F64Add()
				fb.F64(0.2).F64Mul()
				fb.F64Store(bB)
			})
		})
		// copy back
		fb.LoopN(i, 0, nGrid*nGrid, 1, func() {
			fb.Get(i).I32(3).I32Shl()
			fb.Get(i).I32(3).I32Shl().F64Load(bB)
			fb.F64Store(aB)
		})
	})
	fb.F64(0).Set(s)
	fb.LoopN(i, 0, nGrid*nGrid, nGrid+1, func() {
		fb.Get(i).I32(3).I32Shl().F64Load(aB).Get(s).F64Add().Set(s)
	})
	f64Checksum(fb, s)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildPBSeidel2D: Gauss-Seidel sweeps (in-place stencil, serial
// dependence).
func buildPBSeidel2D(bool) *ir.Module {
	const nGrid = 96
	const aB = 0
	m := ir.NewModule("seidel-2d", pages(nGrid*nGrid*8+ir.PageSize), pages(nGrid*nGrid*8+ir.PageSize))
	const (
		steps = 0
		t     = 1
		i     = 2
		j     = 3
		s     = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.F64)
	pbInit(fb, i, aB, nGrid*nGrid, 0.07)
	ld := func(off int32) {
		fb.Get(i).I32(nGrid).I32Mul().Get(j).I32Add().I32(off).I32Add().I32(3).I32Shl()
		fb.F64Load(aB)
	}
	fb.LoopNDyn(t, steps, 0, 1, func() {
		fb.LoopN(i, 1, nGrid-1, 1, func() {
			fb.LoopN(j, 1, nGrid-1, 1, func() {
				fb.Get(i).I32(nGrid).I32Mul().Get(j).I32Add().I32(3).I32Shl()
				ld(-nGrid - 1)
				ld(-nGrid)
				fb.F64Add()
				ld(-nGrid + 1)
				fb.F64Add()
				ld(-1)
				fb.F64Add()
				ld(0)
				fb.F64Add()
				ld(1)
				fb.F64Add()
				ld(nGrid - 1)
				fb.F64Add()
				ld(nGrid)
				fb.F64Add()
				ld(nGrid + 1)
				fb.F64Add()
				fb.F64(9).F64Div()
				fb.F64Store(aB)
			})
		})
	})
	fb.F64(0).Set(s)
	fb.LoopN(i, 0, nGrid*nGrid, nGrid+3, func() {
		fb.Get(i).I32(3).I32Shl().F64Load(aB).Get(s).F64Add().Set(s)
	})
	f64Checksum(fb, s)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildDhrystone approximates the classic Dhrystone mix: record
// assignment (struct copies), string comparison, integer arithmetic,
// and calls, per iteration.
func buildDhrystone(bool) *ir.Module {
	m := ir.NewModule("dhrystone", 2, 2)
	// Two 30-byte "strings" that differ late.
	s1 := []byte("DHRYSTONE PROGRAM, 1'ST STRING")
	s2 := []byte("DHRYSTONE PROGRAM, 2'ND STRING")
	m.AddData(4096, s1)
	m.AddData(8192, s2)

	// proc7(a, b) = a + b + 2 (classic Proc7).
	p7 := m.NewFunc("proc7", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	p7.Get(0).Get(1).I32Add().I32(2).I32Add()
	p7.MustBuild()

	// strcmp30(a, b): compare 30 bytes, returning the difference index.
	sc := m.NewFunc("strcmp30", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}), ir.I32)
	sc.Block()
	sc.Loop()
	sc.Get(2).I32(30).I32GeS().BrIf(1)
	sc.Get(0).Get(2).I32Add().I32Load8U(0)
	sc.Get(1).Get(2).I32Add().I32Load8U(0)
	sc.I32Ne().BrIf(1)
	sc.Get(2).I32(1).I32Add().Set(2)
	sc.Br(0)
	sc.End()
	sc.End()
	sc.Get(2)
	sc.MustBuild()

	const (
		n   = 0
		i   = 1
		a   = 2
		b   = 3
		acc = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(i, n, 0, 1, func() {
		// record copy: 48 bytes from 12288 to 12352 via i64 moves
		for off := int32(0); off < 48; off += 8 {
			fb.I32(off).Get(acc).I64ExtendI32U().I64Store(12288)
			fb.I32(off).I32(0).I64Load(uint32(12288 + off)).I64Store(12352)

		}
		// Proc_1/Proc_2-style integer chain: a and b are the hottest
		// locals (b is the fourth local — register-resident only when
		// Segue frees the base register).
		fb.I32(2).Set(a)
		fb.Get(a).I32(3).I32Mul().Get(i).I32Add().Set(b)
		fb.Get(b).I32(7).I32Add().Get(a).I32Xor().Set(b)
		fb.Get(b).Get(b).I32(3).I32ShrU().I32Add().Set(b)
		fb.Get(b).I32(5).I32Mul().Get(i).I32Sub().Set(b)
		fb.Get(b).I32(9).I32Rotl().Get(a).I32Add().Set(b)
		fb.Get(a).Get(b).CallNamed("proc7").Set(a)
		fb.I32(4096).I32(8192).CallNamed("strcmp30")
		fb.Get(a).I32Add().Get(b).I32Add().Get(acc).I32Add().Set(acc)
		// branchy select chain (Proc6-style)
		fb.Get(i).I32(3).I32And()
		fb.If()
		fb.Get(acc).I32(5).I32Add().Set(acc)
		fb.Else()
		fb.Get(acc).I32(7).I32Xor().Set(acc)
		fb.End()
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}
