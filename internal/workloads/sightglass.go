package workloads

import "repro/internal/ir"

// Sightglass returns the Sightglass micro-benchmark suite (§6.2,
// Figure 4): small kernels exercising single primitives. memmove and
// sieve are written with the unrolled 64-bit access pairs that WAMR's
// vectorization pass fuses — the shape behind the Segue regressions.
func Sightglass() Suite {
	return Suite{Name: "sightglass", Kernels: []Kernel{
		{Name: "base64", Build: buildSGBase64, Entry: "run", Args: []uint64{120000}, TestArgs: []uint64{300}},
		{Name: "fib2", Build: buildSGFib2, Entry: "run", Args: []uint64{1500000}, TestArgs: []uint64{30}},
		{Name: "gimli", Build: buildSGGimli, Entry: "run", Args: []uint64{40000}, TestArgs: []uint64{24}},
		{Name: "heapsort", Build: buildSGHeapsort, Entry: "run", Args: []uint64{30000}, TestArgs: []uint64{100}},
		{Name: "matrix", Build: buildSGMatrix, Entry: "run", Args: []uint64{48}, TestArgs: []uint64{8}},
		{Name: "memmove", Build: buildSGMemmove, Entry: "run", Args: []uint64{9000}, TestArgs: []uint64{3}},
		{Name: "nestedloop", Build: buildSGNestedLoop, Entry: "run", Args: []uint64{500}, TestArgs: []uint64{10}},
		{Name: "nestedloop2", Build: buildSGNestedLoop2, Entry: "run", Args: []uint64{120}, TestArgs: []uint64{6}},
		{Name: "nestedloop3", Build: buildSGNestedLoop3, Entry: "run", Args: []uint64{42}, TestArgs: []uint64{4}},
		{Name: "random", Build: buildSGRandom, Entry: "run", Args: []uint64{400000}, TestArgs: []uint64{500}},
		{Name: "seqhash", Build: buildSGSeqhash, Entry: "run", Args: []uint64{400000}, TestArgs: []uint64{512}},
		{Name: "sieve", Build: buildSGSieve, Entry: "run", Args: []uint64{450}, TestArgs: []uint64{2}},
		{Name: "strchr", Build: buildSGStrchr, Entry: "run", Args: []uint64{150}, TestArgs: []uint64{3}},
		{Name: "switch2", Build: buildSGSwitch, Entry: "run", Args: []uint64{300000}, TestArgs: []uint64{200}},
	}}
}

// buildSGBase64 encodes a pseudo-random buffer, accumulating the output
// bytes as the checksum.
func buildSGBase64(bool) *ir.Module {
	m := ir.NewModule("base64", 4, 4)
	m.AddData(0, splitmix(0xb64, 60000))
	m.AddData(200000, []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"))
	const (
		n   = 0 // param: bytes to encode (capped by the data region)
		i   = 1
		j   = 2
		acc = 3
		w   = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32, ir.I32, ir.I32)
	// Cap n to the data region.
	fb.Get(n).I32(59997).I32GtS()
	fb.If()
	fb.I32(59997).Set(n)
	fb.End()
	fb.While(func() {
		fb.Get(i).Get(n).I32LtS()
	}, func() {
		// w = src[i]<<16 | src[i+1]<<8 | src[i+2]
		fb.Get(i).I32Load8U(0).I32(16).I32Shl()
		fb.Get(i).I32Load8U(1).I32(8).I32Shl().I32Or()
		fb.Get(i).I32Load8U(2).I32Or()
		fb.Set(w)
		// four table lookups, stored and accumulated
		for k, shift := range []int32{18, 12, 6, 0} {
			fb.Get(j).I32(int32(k)).I32Add()
			fb.Get(w).I32(shift).I32ShrU().I32(63).I32And().I32Load8U(200000)
			fb.I32Store8(100000) // dst[j+k] = alphabet[...]
			fb.Get(acc)
			fb.Get(w).I32(shift).I32ShrU().I32(63).I32And().I32Load8U(200000)
			fb.I32Add().Set(acc)
		}
		fb.Get(i).I32(3).I32Add().Set(i)
		fb.Get(j).I32(4).I32Add().Set(j)
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGFib2 is the pure-ALU iterative Fibonacci.
func buildSGFib2(bool) *ir.Module {
	m := ir.NewModule("fib2", 1, 1)
	const (
		n = 0
		i = 1
		a = 2
		b = 3
		t = 4
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32, ir.I32, ir.I32)
	fb.I32(1).Set(b)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(a).Get(b).I32Add().Set(t)
		fb.Get(b).Set(a)
		fb.Get(t).Set(b)
	})
	fb.Get(a)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGGimli runs the Gimli permutation over a 48-byte state for the
// given number of outer applications.
func buildSGGimli(bool) *ir.Module {
	m := ir.NewModule("gimli", 1, 1)
	m.AddData(0, splitmix(0x91311, 48))
	const (
		iters = 0
		it    = 1
		r     = 2
		col   = 3
		x     = 4
		y     = 5
		z     = 6
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(it, iters, 0, 1, func() {
		// for r = 24; r > 0; r--
		fb.I32(24).Set(r)
		fb.While(func() { fb.Get(r).I32(0).I32GtS() }, func() {
			fb.LoopN(col, 0, 4, 1, func() {
				// x = rotl(s[col], 24)
				fb.Get(col).I32(2).I32Shl().I32Load(0).I32(24).I32Rotl().Set(x)
				// y = rotl(s[4+col], 9)
				fb.Get(col).I32(2).I32Shl().I32Load(16).I32(9).I32Rotl().Set(y)
				// z = s[8+col]
				fb.Get(col).I32(2).I32Shl().I32Load(32).Set(z)
				// s[8+col] = x ^ (z<<1) ^ ((y&z)<<2)
				fb.Get(col).I32(2).I32Shl()
				fb.Get(x).Get(z).I32(1).I32Shl().I32Xor()
				fb.Get(y).Get(z).I32And().I32(2).I32Shl().I32Xor()
				fb.I32Store(32)
				// s[4+col] = y ^ x ^ ((x|z)<<1)
				fb.Get(col).I32(2).I32Shl()
				fb.Get(y).Get(x).I32Xor()
				fb.Get(x).Get(z).I32Or().I32(1).I32Shl().I32Xor()
				fb.I32Store(16)
				// s[col] = z ^ y ^ ((x&y)<<3)
				fb.Get(col).I32(2).I32Shl()
				fb.Get(z).Get(y).I32Xor()
				fb.Get(x).Get(y).I32And().I32(3).I32Shl().I32Xor()
				fb.I32Store(0)
			})
			// small swap every 4 rounds, big swap on r%4==2
			fb.Get(r).I32(3).I32And().I32Eqz()
			fb.If()
			// swap s[0]<->s[1], s[2]<->s[3]; xor round constant into s[0]
			fb.I32(0).I32Load(0).Set(x)
			fb.I32(0).I32(0).I32Load(4).I32Store(0)
			fb.I32(0).Get(x).I32Store(4)
			fb.I32(0).I32Load(8).Set(x)
			fb.I32(0).I32(0).I32Load(12).I32Store(8)
			fb.I32(0).Get(x).I32Store(12)
			fb.I32(0)
			fb.I32(0).I32Load(0)
			fb.I32(u32c(0x9e377900)).Get(r).I32Or().I32Xor()
			fb.I32Store(0)
			fb.End()
			fb.Get(r).I32(3).I32And().I32(2).I32Eq()
			fb.If()
			// big swap: s[0]<->s[2], s[1]<->s[3]
			fb.I32(0).I32Load(0).Set(x)
			fb.I32(0).I32(0).I32Load(8).I32Store(0)
			fb.I32(0).Get(x).I32Store(8)
			fb.I32(0).I32Load(4).Set(x)
			fb.I32(0).I32(0).I32Load(12).I32Store(4)
			fb.I32(0).Get(x).I32Store(12)
			fb.End()
			fb.Get(r).I32(1).I32Sub().Set(r)
		})
	})
	fb.I32(0).I32Load(0)
	fb.I32(0).I32Load(44).I32Add()
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGHeapsort sorts n pseudo-random u32s with an out-of-line
// sift-down (exercising calls), returning a sample checksum.
func buildSGHeapsort(bool) *ir.Module {
	m := ir.NewModule("heapsort", 4, 4)
	// sift(root, end): sift a[root] down within a[0..end]
	sift := m.NewFunc("sift", ir.Sig([]ir.ValType{ir.I32, ir.I32}, nil), ir.I32, ir.I32)
	const (
		root  = 0
		end   = 1
		child = 2
		tmp   = 3
	)
	sift.Block()
	sift.Loop()
	sift.Get(root).I32(1).I32Shl().I32(1).I32Add().Set(child)
	sift.Get(child).Get(end).I32GtS().BrIf(1)
	// pick the larger child
	sift.Get(child).Get(end).I32LtS()
	sift.If()
	sift.Get(child).I32(2).I32Shl().I32Load(0)
	sift.Get(child).I32(2).I32Shl().I32Load(4)
	sift.I32LtU()
	sift.If()
	sift.Get(child).I32(1).I32Add().Set(child)
	sift.End()
	sift.End()
	// if a[root] >= a[child] done
	sift.Get(root).I32(2).I32Shl().I32Load(0)
	sift.Get(child).I32(2).I32Shl().I32Load(0)
	sift.I32GeU().BrIf(1)
	// swap a[root], a[child]
	sift.Get(root).I32(2).I32Shl().I32Load(0).Set(tmp)
	sift.Get(root).I32(2).I32Shl()
	sift.Get(child).I32(2).I32Shl().I32Load(0)
	sift.I32Store(0)
	sift.Get(child).I32(2).I32Shl().Get(tmp).I32Store(0)
	sift.Get(child).Set(root)
	sift.Br(0)
	sift.End()
	sift.End()
	sift.MustBuild()

	const (
		n   = 0
		i   = 1
		x64 = 2 // i64 LCG state
		e   = 3
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I64, ir.I32)
	// fill with LCG values
	fb.I64(0x2545F4914F6CDD1D).Set(x64)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(x64).I64(6364136223846793005).I64Mul().I64(1442695040888963407).I64Add().Set(x64)
		fb.Get(i).I32(2).I32Shl()
		fb.Get(x64).I64(33).I64ShrU().I32WrapI64()
		fb.I32Store(0)
	})
	// heapify
	fb.Get(n).I32(2).I32DivS().I32(1).I32Sub().Set(i)
	fb.While(func() { fb.Get(i).I32(0).I32GeS() }, func() {
		fb.Get(i).Get(n).I32(1).I32Sub().CallNamed("sift")
		fb.Get(i).I32(1).I32Sub().Set(i)
	})
	// sort
	fb.Get(n).I32(1).I32Sub().Set(e)
	fb.While(func() { fb.Get(e).I32(0).I32GtS() }, func() {
		// swap a[0], a[e]
		fb.I32(0).I32Load(0).Set(i)
		fb.I32(0)
		fb.Get(e).I32(2).I32Shl().I32Load(0)
		fb.I32Store(0)
		fb.Get(e).I32(2).I32Shl().Get(i).I32Store(0)
		fb.I32(0).Get(e).I32(1).I32Sub().CallNamed("sift")
		fb.Get(e).I32(1).I32Sub().Set(e)
	})
	fb.I32(0).I32Load(0)
	fb.Get(n).I32(1).I32ShrS().I32(2).I32Shl().I32Load(0).I32Add()
	fb.Get(n).I32(1).I32Sub().I32(2).I32Shl().I32Load(0).I32Add()
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGMatrix multiplies two n x n i32 matrices (A at 0, B at 256 KiB,
// C at 512 KiB), returning the diagonal sum.
func buildSGMatrix(bool) *ir.Module {
	m := ir.NewModule("matrix", 16, 16)
	m.AddData(0, splitmix(0x3a7, 65536))
	m.AddData(262144, splitmix(0x3b8, 65536))
	const (
		n   = 0
		i   = 1
		j   = 2
		k   = 3
		sum = 4
		ib  = 5 // i*n
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).Get(n).I32Mul().Set(ib)
		fb.LoopNDyn(j, n, 0, 1, func() {
			fb.I32(0).Set(sum)
			fb.LoopNDyn(k, n, 0, 1, func() {
				// sum += A[i*n+k] * B[k*n+j]
				fb.Get(ib).Get(k).I32Add().I32(2).I32Shl().I32Load(0)
				fb.Get(k).Get(n).I32Mul().Get(j).I32Add().I32(2).I32Shl().I32Load(262144)
				fb.I32Mul().Get(sum).I32Add().Set(sum)
			})
			// C[i*n+j] = sum
			fb.Get(ib).Get(j).I32Add().I32(2).I32Shl()
			fb.Get(sum)
			fb.I32Store(524288)
		})
	})
	// diagonal checksum
	fb.I32(0).Set(sum)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).Get(n).I32Mul().Get(i).I32Add().I32(2).I32Shl().I32Load(524288)
		fb.Get(sum).I32Add().Set(sum)
	})
	fb.Get(sum)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGMemmove copies an 8 KiB (L1-resident) buffer with 2x-unrolled
// 64-bit moves — the exact shape WAMR's vectorizer fuses into movdqu
// pairs.
func buildSGMemmove(bool) *ir.Module {
	m := ir.NewModule("memmove", 2, 2)
	m.AddData(0, splitmix(0x33, 8192))
	// The inner counter is local 1 so it lands in a register in every
	// mode; spilled counters would split the copy pairs the vectorizer
	// matches.
	const (
		iters = 0
		i     = 1
		it    = 2
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(it, iters, 0, 1, func() {
		fb.I32(0).Set(i)
		fb.While(func() { fb.Get(i).I32(8192).I32LtS() }, func() {
			// dst[i] = src[i]; dst[i+8] = src[i+8] (64-bit pairs)
			fb.Get(i).Get(i).I64Load(0).I64Store(8192)
			fb.Get(i).Get(i).I64Load(8).I64Store(8200)
			fb.Get(i).I32(16).I32Add().Set(i)
		})
	})
	fb.I32(4096).I32Load(8192)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

func buildNested(depth int, name string) func(bool) *ir.Module {
	return func(bool) *ir.Module {
		m := ir.NewModule(name, 1, 1)
		locals := make([]ir.ValType, depth+1)
		for i := range locals {
			locals[i] = ir.I32
		}
		fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), locals...)
		acc := uint32(depth + 1)
		var nest func(d int)
		nest = func(d int) {
			if d == 0 {
				fb.Get(acc).I32(1).I32Add().Set(acc)
				return
			}
			fb.LoopNDyn(uint32(d), 0, 0, 1, func() { nest(d - 1) })
		}
		nest(depth)
		fb.Get(acc)
		fb.MustBuild()
		m.MustExport("run")
		return mustValidate(m)
	}
}

func buildSGNestedLoop(native bool) *ir.Module  { return buildNested(2, "nestedloop")(native) }
func buildSGNestedLoop2(native bool) *ir.Module { return buildNested(3, "nestedloop2")(native) }
func buildSGNestedLoop3(native bool) *ir.Module { return buildNested(4, "nestedloop3")(native) }

// buildSGRandom runs a 64-bit LCG, scattering values into a 64 KiB
// window (random-access stores).
func buildSGRandom(bool) *ir.Module {
	m := ir.NewModule("random", 2, 2)
	const (
		n = 0
		i = 1
		x = 2 // i64 state
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I64)
	fb.I64(88172645463325252).Set(x)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(x).I64(6364136223846793005).I64Mul().I64(1442695040888963407).I64Add().Set(x)
		// buf[(x>>17) & 0xFFFC] = x
		fb.Get(x).I64(17).I64ShrU().I32WrapI64().I32(0xFFFC).I32And()
		fb.Get(x).I32WrapI64()
		fb.I32Store(0)
	})
	fb.Get(x).I32WrapI64()
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGSeqhash FNV-1a hashes a 64 KiB buffer repeatedly.
func buildSGSeqhash(bool) *ir.Module {
	m := ir.NewModule("seqhash", 2, 2)
	m.AddData(0, splitmix(0x5e9, 65536))
	const (
		n = 0
		i = 1
		h = 2
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.I32(u32c(2166136261)).Set(h)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(h)
		fb.Get(i).I32(0xFFFF).I32And().I32Load8U(0)
		fb.I32Xor().I32(16777619).I32Mul().Set(h)
	})
	fb.Get(h)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGSieve is the sieve of Eratosthenes over 64K flags. The flag
// array is cleared with 2x-unrolled 64-bit zero stores (the vectorizable
// memset shape), then primes are counted.
func buildSGSieve(bool) *ir.Module {
	m := ir.NewModule("sieve", 2, 2)
	// Inner-loop locals first so they get registers (see memmove).
	const (
		iters = 0
		i     = 1
		p     = 2
		it    = 3
		cnt   = 4
		limit = 8192
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(it, iters, 0, 1, func() {
		// clear flags: unrolled 64-bit zero stores
		fb.I32(0).Set(i)
		fb.While(func() { fb.Get(i).I32(limit).I32LtS() }, func() {
			fb.Get(i).I64(0).I64Store(0)
			fb.Get(i).I64(0).I64Store(8)
			fb.Get(i).I32(16).I32Add().Set(i)
		})
		// mark composites
		fb.I32(2).Set(p)
		fb.While(func() { fb.Get(p).Get(p).I32Mul().I32(limit).I32LtS() }, func() {
			fb.Get(p).I32Load8U(0).I32Eqz()
			fb.If()
			fb.Get(p).Get(p).I32Mul().Set(i)
			fb.While(func() { fb.Get(i).I32(limit).I32LtS() }, func() {
				fb.Get(i).I32(1).I32Store8(0)
				fb.Get(i).Get(p).I32Add().Set(i)
			})
			fb.End()
			fb.Get(p).I32(1).I32Add().Set(p)
		})
		// count composites via 64-bit popcounts over the flag bytes
		fb.I32(0).Set(cnt)
		fb.I32(0).Set(i)
		fb.While(func() { fb.Get(i).I32(limit).I32LtS() }, func() {
			fb.Get(i).I64Load(0).I64Popcnt().I32WrapI64().Get(cnt).I32Add().Set(cnt)
			fb.Get(i).I32(8).I32Add().Set(i)
		})
	})
	fb.Get(cnt)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGStrchr scans a 16 KiB string for a byte that appears only at
// the end, n times.
func buildSGStrchr(bool) *ir.Module {
	m := ir.NewModule("strchr", 1, 1)
	data := splitmix(0x57c, 16384)
	for i := range data {
		if data[i] == 0x7F {
			data[i] = 0x20
		}
	}
	data[16383] = 0x7F
	m.AddData(0, data)
	const (
		n   = 0
		it  = 1
		i   = 2
		acc = 3
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(it, n, 0, 1, func() {
		fb.I32(0).Set(i)
		fb.Block()
		fb.Loop()
		fb.Get(i).I32Load8U(0).I32(0x7F).I32Eq().BrIf(1)
		fb.Get(i).I32(1).I32Add().Set(i)
		fb.Br(0)
		fb.End()
		fb.End()
		fb.Get(acc).Get(i).I32Add().Set(acc)
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildSGSwitch dispatches through a 20-way br_table in a hot loop.
func buildSGSwitch(bool) *ir.Module {
	m := ir.NewModule("switch2", 1, 1)
	const (
		n   = 0
		i   = 1
		acc = 2
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	const ways = 20
	fb.LoopNDyn(i, n, 0, 1, func() {
		// open `ways` blocks plus a default
		for k := 0; k <= ways; k++ {
			fb.Block()
		}
		fb.Get(i).I32(u32c(2654435761)).I32Mul().I32(27).I32ShrU().I32(31).I32And()
		targets := make([]uint32, ways)
		for k := range targets {
			targets[k] = uint32(k)
		}
		fb.BrTable(targets, ways)
		fb.End()
		for k := 1; k <= ways; k++ {
			fb.Get(acc).I32(int32(k * k)).I32Add().Set(acc)
			fb.Br(uint32(ways - k))
			fb.End()
		}
		fb.Get(acc).I32(1).I32Xor().Set(acc)
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}
