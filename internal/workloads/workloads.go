// Package workloads defines every benchmark program the evaluation
// runs, written in the internal IR: the Sightglass micro-suite, the
// SPEC CPU 2006 and 2017 stand-in kernels, the PolybenchC subset and
// Dhrystone (WAMR's suites), Firefox's font-rendering and XML-parsing
// library workloads, and the FaaS handlers of §6.4.3.
//
// SPEC sources cannot be shipped, so each SPEC entry is a synthetic
// kernel calibrated to the benchmark's published character (memory-op
// density, pointer chasing, floating-point share, branchiness, working
// set); see DESIGN.md for why this preserves the paper's shape. Kernels
// whose native builds benefit from 64-bit pointers (the
// pointer-compression effect behind 429_mcf running faster under Wasm)
// take a pointer-width parameter: Build(true) produces the native
// variant with 8-byte links.
package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// Kernel is one benchmark program.
type Kernel struct {
	Name string

	// Build constructs a fresh module. native selects the native
	// variant (8-byte pointers where the kernel models pointer-heavy
	// code); most kernels ignore it.
	Build func(native bool) *ir.Module

	// Entry is the exported function to invoke; it takes Args and
	// returns an i32/i64 checksum.
	Entry string

	// Args are the benchmark-scale arguments; TestArgs are reduced
	// sizes for differential testing.
	Args     []uint64
	TestArgs []uint64

	// PtrSensitive marks kernels whose native variant differs (so
	// harnesses know to build both).
	PtrSensitive bool
}

// Suite is a named list of kernels.
type Suite struct {
	Name    string
	Kernels []Kernel
}

// Find returns the kernel with the given name.
func (s Suite) Find(name string) (Kernel, error) {
	for _, k := range s.Kernels {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workloads: no kernel %q in suite %s", name, s.Name)
}

// mustValidate builds and validates, panicking on kernel bugs (kernels
// are static test fixtures; failing fast is right).
func mustValidate(m *ir.Module) *ir.Module {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("workloads: %s: %v", m.Name, err))
	}
	return m
}

// u32c converts a uint32 constant to the int32 the builder takes,
// avoiding compile-time constant-overflow errors.
func u32c(v uint32) int32 { return int32(v) }

// pages returns the page count covering n bytes.
func pages(n uint64) uint32 {
	return uint32((n + ir.PageSize - 1) / ir.PageSize)
}

// splitmix fills a deterministic pseudo-random byte buffer for kernel
// input data segments.
func splitmix(seed uint64, n int) []byte {
	out := make([]byte, n)
	x := seed
	for i := 0; i < n; i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(z >> (8 * j))
		}
	}
	return out
}
