package workloads

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sfi"
)

// suites under test; extended as suites are added.
func allSuites() []Suite {
	return []Suite{
		Sightglass(),
		Spec2006(),
		Spec2017(),
		Polybench(),
		Firefox(),
		FaaS(),
	}
}

var testModes = []sfi.Mode{
	sfi.ModeNative, sfi.ModeGuard, sfi.ModeSegue, sfi.ModeBoundsCheck, sfi.ModeLFI,
}

// TestKernelsDifferential runs every kernel with its TestArgs on the
// reference interpreter and under each compilation mode; checksums must
// agree. This is the main correctness gate for the workload corpus.
func TestKernelsDifferential(t *testing.T) {
	for _, suite := range allSuites() {
		suite := suite
		t.Run(suite.Name, func(t *testing.T) {
			for _, k := range suite.Kernels {
				k := k
				t.Run(k.Name, func(t *testing.T) {
					t.Parallel()
					ref := k.Build(false)
					interp, err := ir.NewInterp(ref, nil)
					if err != nil {
						t.Fatalf("interp: %v", err)
					}
					interp.StepLimit = 500_000_000
					want, err := interp.Invoke(k.Entry, k.TestArgs...)
					if err != nil {
						t.Fatalf("interp run: %v", err)
					}
					for _, mode := range testModes {
						native := mode == sfi.ModeNative
						mod, err := rt.CompileModule(k.Build(native), sfi.DefaultConfig(mode))
						if err != nil {
							t.Fatalf("%v compile: %v", mode, err)
						}
						inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
						if err != nil {
							t.Fatalf("%v instantiate: %v", mode, err)
						}
						got, err := inst.Invoke(k.Entry, k.TestArgs...)
						if err != nil {
							t.Fatalf("%v run: %v", mode, err)
						}
						if k.PtrSensitive && native {
							// The native variant is a different program
							// (8-byte pointers); only check it runs.
							continue
						}
						if want[0] != got[0] {
							t.Errorf("%v: checksum %#x, interpreter %#x", mode, got[0], want[0])
						}
					}
				})
			}
		})
	}
}

// TestKernelsVectorized re-runs the memory-movement kernels under the
// WAMR vectorizing configurations; results must not change.
func TestKernelsVectorized(t *testing.T) {
	sg := Sightglass()
	for _, name := range []string{"memmove", "sieve", "matrix", "base64"} {
		k, err := sg.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		ref := k.Build(false)
		interp, _ := ir.NewInterp(ref, nil)
		interp.StepLimit = 500_000_000
		want, err := interp.Invoke(k.Entry, k.TestArgs...)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []sfi.Config{
			{Mode: sfi.ModeGuard, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 65536},
			{Mode: sfi.ModeSegue, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 65536},
			{Mode: sfi.ModeSegue, SegueLoadsOnly: true, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 65536},
		} {
			mod, err := rt.CompileModule(k.Build(false), cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := inst.Invoke(k.Entry, k.TestArgs...)
			if err != nil {
				t.Fatalf("%s vectorized: %v", name, err)
			}
			if got[0] != want[0] {
				t.Errorf("%s under %v: %#x vs %#x", name, cfg.Mode, got[0], want[0])
			}
		}
	}
}

// TestVectorizerFires confirms the pass actually fuses the intended
// kernels in guard mode and is defeated by segment-prefixed stores.
func TestVectorizerFires(t *testing.T) {
	sg := Sightglass()
	for _, name := range []string{"memmove", "sieve"} {
		k, _ := sg.Find(name)
		count := func(cfg sfi.Config) int {
			prog, _ := sfi.MustCompile(k.Build(false), cfg)
			n := 0
			for _, f := range prog.Funcs {
				for _, in := range f.Insts {
					if in.Op.String() == "movdqu" {
						n++
					}
				}
			}
			return n
		}
		guard := count(sfi.Config{Mode: sfi.ModeGuard, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 65536})
		segue := count(sfi.Config{Mode: sfi.ModeSegue, FoldOperandSlot: true, Vectorize: true, FoldDispLimit: 65536})
		if guard == 0 {
			t.Errorf("%s: vectorizer never fired in guard mode", name)
		}
		if segue != 0 {
			t.Errorf("%s: vectorizer fired %d times despite segment-prefixed stores", name, segue)
		}
	}
}
