package workloads

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ir"
)

// Firefox returns the library-sandboxing workloads of §6.1: a
// scanline glyph rasterizer standing in for libgraphite (font
// rendering, invoked once per glyph — transition heavy) and an XML
// tokenizer standing in for libexpat (invoked once per document chunk).
//
// The "glyph" export renders one glyph (what Firefox's per-glyph
// invocation pattern calls); "run" renders n glyphs for batch
// measurement and differential testing.
func Firefox() Suite {
	return Suite{Name: "firefox", Kernels: []Kernel{
		{Name: "font", Build: buildFont, Entry: "run", Args: []uint64{4000}, TestArgs: []uint64{12}},
		{Name: "xml", Build: buildXML, Entry: "run", Args: []uint64{300}, TestArgs: []uint64{3}},
	}}
}

const (
	fontGlyphBase  = 0     // 64 glyphs x 16 edges x 8 bytes
	fontBitmapBase = 50000 // 32x32 byte bitmap
	fontCrossBase  = 51200 // scanline crossing buffer (i32 x values)
	fontEdges      = 16
	fontGlyphs     = 64
)

// fontGlyphData generates deterministic glyph outlines: each edge is
// (x0, y0, x1, y1) in 8.8 fixed point with y0 != y1.
func fontGlyphData() []byte {
	out := make([]byte, fontGlyphs*fontEdges*8)
	x := uint64(0xF047)
	next := func(mod int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(mod))
	}
	for g := 0; g < fontGlyphs; g++ {
		for e := 0; e < fontEdges; e++ {
			x0 := next(32 << 8)
			y0 := next(32 << 8)
			y1 := next(32 << 8)
			if y1>>4 == y0>>4 {
				y1 = (y0 + (8 << 8)) % (32 << 8)
			}
			x1 := next(32 << 8)
			off := (g*fontEdges + e) * 8
			binary.LittleEndian.PutUint16(out[off:], uint16(x0))
			binary.LittleEndian.PutUint16(out[off+2:], uint16(y0))
			binary.LittleEndian.PutUint16(out[off+4:], uint16(x1))
			binary.LittleEndian.PutUint16(out[off+6:], uint16(y1))
		}
	}
	return out
}

// buildFont builds the rasterizer module.
func buildFont(bool) *ir.Module {
	m := ir.NewModule("font", 1, 1)
	m.AddData(fontGlyphBase, fontGlyphData())

	// glyph(g) -> checksum of the rasterized 32x32 bitmap.
	g := m.NewFunc("glyph", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	const (
		gi   = 0 // glyph index (param)
		y    = 1 // scanline
		e    = 2 // edge index
		cnt  = 3 // crossings this scanline
		base = 4 // glyph edge base address
		y0   = 5
		y1   = 6
		xx   = 7 // crossing x
		k    = 8
		acc  = 9
	)
	// base = (g % 64) * edges*8
	g.Get(gi).I32(fontGlyphs - 1).I32And().I32(fontEdges * 8).I32Mul().Set(base)
	// clear bitmap
	g.I32(fontBitmapBase).I32(0).I32(1024).MemFill()
	g.LoopN(y, 0, 32, 1, func() {
		g.I32(0).Set(cnt)
		g.LoopN(e, 0, fontEdges, 1, func() {
			// load y0, y1 (8.8 fixed)
			g.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(fontGlyphBase + 2).Set(y0)
			g.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(fontGlyphBase + 6).Set(y1)
			// does scanline yc = y<<8 | 0x80 cross [min(y0,y1), max)?
			// compute crossing using signed interpolation
			g.Get(y0).Get(y1).I32GtS()
			g.If()
			// swap so y0 < y1 (also swap x roles by reloading below)
			g.Get(y0).Get(y1).Set(y0).Set(y1) // note: set order pops y1's value into y0...
			g.End()
			g.Get(y0).Get(y).I32(8).I32Shl().I32(128).I32Or().I32LeS()
			g.Get(y).I32(8).I32Shl().I32(128).I32Or().Get(y1).I32LtS()
			g.I32And()
			g.If()
			// x = x0 + (yc - y0) * (x1 - x0) / (y1 - y0)
			g.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(fontGlyphBase + 0)
			g.Get(y).I32(8).I32Shl().I32(128).I32Or().Get(y0).I32Sub()
			g.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(fontGlyphBase + 4)
			g.Get(base).Get(e).I32(3).I32Shl().I32Add().I32Load16U(fontGlyphBase + 0)
			g.I32Sub().I32Mul()
			g.Get(y1).Get(y0).I32Sub().I32DivS()
			g.I32Add().Set(xx)
			// crossings[cnt++] = x
			g.Get(cnt).I32(2).I32Shl().Get(xx).I32Store(fontCrossBase)
			g.Get(cnt).I32(1).I32Add().Set(cnt)
			g.End()
		})
		// insertion sort crossings[0..cnt)
		g.I32(1).Set(e)
		g.While(func() { g.Get(e).Get(cnt).I32LtS() }, func() {
			g.Get(e).Set(k)
			g.While(func() {
				g.Get(k).I32(0).I32GtS()
				g.If(ir.I32)
				g.Get(k).I32(2).I32Shl().I32Load(fontCrossBase - 4)
				g.Get(k).I32(2).I32Shl().I32Load(fontCrossBase)
				g.I32GtS()
				g.Else()
				g.I32(0)
				g.End()
			}, func() {
				// swap crossings[k-1], crossings[k]
				g.Get(k).I32(2).I32Shl().I32Load(fontCrossBase - 4).Set(xx)
				g.Get(k).I32(2).I32Shl()
				g.Get(k).I32(2).I32Shl().I32Load(fontCrossBase)
				g.I32Store(fontCrossBase - 4)
				g.Get(k).I32(2).I32Shl().Get(xx).I32Store(fontCrossBase)
				g.Get(k).I32(1).I32Sub().Set(k)
			})
			g.Get(e).I32(1).I32Add().Set(e)
		})
		// fill spans: pairs of crossings
		g.I32(0).Set(e)
		g.While(func() { g.Get(e).I32(1).I32Add().Get(cnt).I32LtS() }, func() {
			// from x0 = crossings[e]>>8 clamped, to x1 = crossings[e+1]>>8
			g.Get(e).I32(2).I32Shl().I32Load(fontCrossBase).I32(8).I32ShrS().Set(y0)
			g.Get(e).I32(2).I32Shl().I32Load(fontCrossBase + 4).I32(8).I32ShrS().Set(y1)
			// clamp to [0, 31]
			g.Get(y0).I32(0).I32LtS()
			g.If()
			g.I32(0).Set(y0)
			g.End()
			g.Get(y1).I32(31).I32GtS()
			g.If()
			g.I32(31).Set(y1)
			g.End()
			g.Get(y0).Set(k)
			g.While(func() { g.Get(k).Get(y1).I32LeS() }, func() {
				g.Get(y).I32(5).I32Shl().Get(k).I32Add()
				g.I32(255)
				g.I32Store8(fontBitmapBase)
				g.Get(k).I32(1).I32Add().Set(k)
			})
			g.Get(e).I32(2).I32Add().Set(e)
		})
	})
	// checksum bitmap
	g.I32(0).Set(acc)
	g.LoopN(k, 0, 1024, 1, func() {
		g.Get(k).I32Load8U(fontBitmapBase).Get(acc).I32(31).I32Rotl().I32Add().Set(acc)
	})
	g.Get(acc)
	g.MustBuild()

	// run(n): render n glyphs, xor of checksums.
	const (
		n  = 0
		i  = 1
		a2 = 2
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(i, n, 0, 1, func() {
		fb.Get(i).CallNamed("glyph").Get(a2).I32Xor().Set(a2)
	})
	fb.Get(a2)
	fb.MustBuild()
	m.MustExport("glyph")
	m.MustExport("run")
	return mustValidate(m)
}

// xmlDocument generates the SVG-flavored test document: nested elements
// with attributes and text, echoing the paper's Google-Docs-toolbar SVG
// amplified by concatenation.
func xmlDocument() []byte {
	var doc []byte
	doc = append(doc, "<svg width=\"1024\" height=\"768\">"...)
	for i := 0; i < 40; i++ {
		doc = append(doc, fmt.Sprintf("<g id=\"icon%d\" class=\"toolbar\"><path d=\"M0 0 L%d %d Z\" fill=\"#4285f4\"/><rect x=\"%d\" y=\"2\" width=\"16\" height=\"16\"/>text run %d</g>", i, i*3, i*7%31, i%19, i)...)
	}
	doc = append(doc, "</svg>"...)
	return doc
}

const (
	xmlDocBase   = 8192
	xmlClassBase = 0 // 256-byte character class table
)

// buildXML builds the tokenizer module. parse(len) scans the document
// prefix of the given length; run(n) parses the whole document n times.
func buildXML(bool) *ir.Module {
	m := ir.NewModule("xml", 2, 2)
	// Character classes, replicated per state plane (state*256 + char):
	// 0=text, 1='<', 2='>', 3='"', 4='=', 5='/', 6=space.
	classes := make([]byte, 3*256)
	for plane := 0; plane < 3; plane++ {
		classes[plane*256+'<'] = 1
		classes[plane*256+'>'] = 2
		classes[plane*256+'"'] = 3
		classes[plane*256+'='] = 4
		classes[plane*256+'/'] = 5
		classes[plane*256+' '] = 6
	}
	m.AddData(xmlClassBase, classes)
	doc := xmlDocument()
	m.AddData(xmlDocBase, doc)

	p := m.NewFunc("parse", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	const (
		length = 0
		i      = 1
		state  = 2 // 0=text, 1=tag, 2=quoted attribute value
		elems  = 3
		attrs  = 4
		text   = 5
		cls    = 6
		docp   = 7 // document base "pointer" (runtime value)
	)
	p.I32(xmlDocBase).Set(docp)
	p.LoopNDyn(i, length, 0, 1, func() {
		// cls = classes[state*256 + doc[i]] — both lookups are
		// base+index accesses.
		p.Get(i).Get(docp).I32Add().I32Load8U(0)
		p.Get(state).I32(8).I32Shl().I32Add().I32Load8U(xmlClassBase).Set(cls)
		p.Get(state).I32Eqz()
		p.If() // text state
		p.Get(cls).I32(1).I32Eq()
		p.If() // '<' opens a tag
		p.I32(1).Set(state)
		p.Get(elems).I32(1).I32Add().Set(elems)
		p.Else()
		p.Get(text).I32(1).I32Add().Set(text)
		p.End()
		p.Else()
		p.Get(state).I32(1).I32Eq()
		p.If() // tag state
		p.Get(cls).I32(2).I32Eq()
		p.If() // '>' closes the tag
		p.I32(0).Set(state)
		p.Else()
		p.Get(cls).I32(3).I32Eq()
		p.If() // '"' opens a quoted value
		p.I32(2).Set(state)
		p.Else()
		p.Get(cls).I32(4).I32Eq()
		p.If() // '=' marks an attribute
		p.Get(attrs).I32(1).I32Add().Set(attrs)
		p.End()
		p.End()
		p.End()
		p.Else() // quoted state
		p.Get(cls).I32(3).I32Eq()
		p.If() // closing '"'
		p.I32(1).Set(state)
		p.End()
		p.End()
		p.End()
	})
	p.Get(elems).I32(16).I32Shl()
	p.Get(attrs).I32(6).I32Shl().I32Add()
	p.Get(text).I32Add()
	p.MustBuild()

	// run(n): parse the full document n times.
	const (
		n   = 0
		it  = 1
		acc = 2
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}), ir.I32, ir.I32)
	fb.LoopNDyn(it, n, 0, 1, func() {
		fb.I32(int32(len(doc))).CallNamed("parse").Get(acc).I32Xor().Set(acc)
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("parse")
	m.MustExport("run")
	return mustValidate(m)
}
