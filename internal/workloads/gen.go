package workloads

import "repro/internal/ir"

// Profile characterizes a synthetic SPEC stand-in kernel: how many
// operations of each class one loop iteration performs, the working-set
// size, and the access pattern. The mixes are calibrated per benchmark
// to published characterizations (memory-op density, FP share,
// branchiness, pointer chasing); DESIGN.md documents why this preserves
// the paper's normalized-runtime shape.
type Profile struct {
	Name string

	IntLoads  int
	IntStores int
	F64Loads  int
	F64Stores int
	ALU       int // integer ALU ops per iteration
	F64ALU    int
	Chase     int // dependent pointer-chase loads per iteration
	Branches  int // data-dependent branches per iteration
	Calls     bool

	WorkingSetKB int
	Sequential   bool // streaming access instead of hashed-random

	// PlainAddr addresses memory through a single pre-scaled register
	// (tight pointer-increment loops). Classic SFI folds these as well
	// as Segue does — so Segue gains nothing and pays its prefix
	// bytes, the 473_astar outlier of §6.1.
	PlainAddr bool
}

// BuildProfile constructs the kernel module for p. The native variant
// stores pointer-chase links as 8-byte entries (native pointer width);
// the Wasm variant uses 4-byte indices — the pointer-compression
// difference behind the 429_mcf outlier.
func BuildProfile(p Profile, native bool) *ir.Module {
	wsBytes := uint64(p.WorkingSetKB) * 1024
	if wsBytes < 4096 {
		wsBytes = 4096
	}
	// The index masks below require a power-of-two working set.
	for wsBytes&(wsBytes-1) != 0 {
		wsBytes &= wsBytes - 1
		wsBytes <<= 1
	}
	// Region layout: ints at 0, f64s after, chase links after that.
	intBase := uint32(0)
	f64Base := uint32(wsBytes)
	chaseElems := uint32(wsBytes / 32)
	chaseStride := uint32(4)
	if native {
		chaseStride = 8
	}
	chaseBase := f64Base + uint32(wsBytes)
	totalBytes := uint64(chaseBase) + uint64(chaseElems*chaseStride) + ir.PageSize
	m := ir.NewModule(p.Name, pages(totalBytes), pages(totalBytes))

	// Optional helper function (gobmk/sjeng-style call-heavy codes).
	if p.Calls {
		h := m.NewFunc("helper", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
		h.Get(0).I32(3).I32Mul().Get(1).I32Xor()
		h.Get(0).I32(11).I32ShrU().I32Add()
		h.MustBuild()
	}

	const (
		iters = 0
		i     = 1
		acc   = 2
		idx   = 3 // element index into the working set
		bp    = 4 // dynamic region "pointer" — gives loads/stores the
		//          base + index*scale shape where classic SFI pays
		ptr  = 5
		x64  = 6 // i64 lcg
		facc = 7 // f64
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I64, ir.F64)

	// --- setup: fill the working set deterministically ---
	fb.I64(-7046029254386353131).Set(x64)
	fb.LoopN(i, 0, int32(wsBytes/4), 1, func() {
		fb.Get(x64).I64(6364136223846793005).I64Mul().I64(1442695040888963407).I64Add().Set(x64)
		fb.Get(i).I32(2).I32Shl()
		fb.Get(x64).I64(32).I64ShrU().I32WrapI64()
		fb.I32Store(intBase)
	})
	fb.LoopN(i, 0, int32(wsBytes/8), 1, func() {
		fb.Get(i).I32(3).I32Shl()
		fb.Get(i).I32(1).I32Add().F64ConvertI32S().F64(1e-3).F64Mul()
		fb.F64Store(f64Base)
	})
	if p.Chase > 0 {
		// links[i] = (i + 9973) mod n: one long cycle with a stride
		// that defeats line reuse.
		fb.LoopN(i, 0, int32(chaseElems), 1, func() {
			if native {
				fb.Get(i).I32(3).I32Shl()
				fb.Get(i).I32(9973).I32Add().I32(int32(chaseElems)).I32RemU()
				fb.I64ExtendI32U()
				fb.I64Store(chaseBase)
			} else {
				fb.Get(i).I32(2).I32Shl()
				fb.Get(i).I32(9973).I32Add().I32(int32(chaseElems)).I32RemU()
				fb.I32Store(chaseBase)
			}
		})
	}

	// --- main loop ---
	// Element-index masks keep idx in the lower half of each region so
	// the per-access "+ small offset" stays in bounds without a mask in
	// the address chain (real code rarely masks every access).
	intElemMask := int32(wsBytes/8 - 1)
	f64ElemMask := int32(wsBytes/16 - 1)
	fb.I32(0).Set(bp) // region "pointer" (runtime value, like a C argument)
	// PlainAddr kernels route all hot state (including the address)
	// through acc, which is register-assigned in every mode, so classic
	// SFI keeps the tight loop entirely in registers too.
	hot := uint32(acc)
	fb.LoopNDyn(i, iters, 0, 1, func() {
		// index selection: hashed-random or streaming
		if p.PlainAddr {
			// Tight-loop shape: one register holds a pre-scaled byte
			// address that doubles as the accumulator; per-access
			// constant displacements fold in every mode. Loads
			// accumulate on the operand stack.
			fb.Get(acc).Get(i).I32Add().I32(u32c(2654435761)).I32Mul().I32(9).I32ShrU().I32(intElemMask).I32And().I32(2).I32Shl().Set(acc)
			fb.Get(acc).I32Load(intBase)
			for l := 1; l < p.IntLoads; l++ {
				fb.Get(acc).I32Load(intBase + uint32(l*68))
				fb.I32Add()
			}
			for s := 0; s < p.IntStores; s++ {
				fb.Get(acc)
				fb.Get(acc)
				fb.I32Store(intBase + uint32(s*132+4))
			}
			// Fold the loaded sum back into the address/accumulator.
			fb.Get(acc).I32Add().Set(acc)
		} else if p.Sequential {
			fb.Get(i).I32(4).I32Shl().I32(intElemMask).I32And().Set(idx)
		} else {
			fb.Get(i).I32(u32c(2654435761)).I32Mul().I32(9).I32ShrU().I32(intElemMask).I32And().Set(idx)
		}
		if !p.PlainAddr {
			for l := 0; l < p.IntLoads; l++ {
				// arr[bp + idx + l*17]: the base + index*scale + disp
				// shape of Figure 1 pattern 2.
				fb.Get(idx).I32(int32(l * 17)).I32Add().I32(2).I32Shl().Get(bp).I32Add()
				fb.I32Load(intBase)
				fb.Get(acc).I32Add().Set(acc)
			}
			for s := 0; s < p.IntStores; s++ {
				fb.Get(idx).I32(int32(s*31 + 7)).I32Add().I32(2).I32Shl().Get(bp).I32Add()
				fb.Get(acc)
				fb.I32Store(intBase)
			}
		}
		for c := 0; c < p.Chase; c++ {
			if native {
				fb.Get(ptr).I32(3).I32Shl().I64Load(chaseBase).I32WrapI64().Set(ptr)
			} else {
				fb.Get(ptr).I32(2).I32Shl().I32Load(chaseBase).Set(ptr)
			}
		}
		if p.Chase > 0 {
			fb.Get(acc).Get(ptr).I32Add().Set(acc)
		}
		for a := 0; a < p.ALU; a++ {
			switch a % 4 {
			case 0:
				fb.Get(hot).I32(3).I32Mul().Get(i).I32Add().Set(hot)
			case 1:
				fb.Get(hot).Get(hot).I32(7).I32ShrU().I32Xor().Set(hot)
			case 2:
				fb.Get(hot).I32(13).I32Rotl().Set(hot)
			default:
				fb.Get(hot).I32(u32c(0x85EBCA6B)).I32Add().Set(hot)
			}
		}
		for f := 0; f < p.F64Loads; f++ {
			fb.Get(idx).I32(f64ElemMask).I32And().I32(int32(f * 13)).I32Add().I32(3).I32Shl().Get(bp).I32Add()
			fb.F64Load(f64Base)
			fb.Get(facc).F64Add().Set(facc)
		}
		for f := 0; f < p.F64ALU; f++ {
			switch f % 3 {
			case 0:
				fb.Get(facc).F64(1.0000001).F64Mul().Set(facc)
			case 1:
				fb.Get(facc).Get(i).F64ConvertI32S().F64(1e9).F64Div().F64Add().Set(facc)
			default:
				fb.Get(facc).F64Abs().F64(1.25).F64Min().Get(facc).F64(0.5).F64Mul().F64Add().Set(facc)
			}
		}
		for f := 0; f < p.F64Stores; f++ {
			fb.Get(idx).I32(f64ElemMask).I32And().I32(int32(f*29 + 3)).I32Add().I32(3).I32Shl().Get(bp).I32Add()
			fb.Get(facc)
			fb.F64Store(f64Base)
		}
		for b := 0; b < p.Branches; b++ {
			fb.Get(hot).I32(int32(b + 1)).I32ShrU().I32(1).I32And()
			fb.If()
			fb.Get(hot).I32(int32(0x27d4eb2d)).I32Add().Set(hot)
			fb.Else()
			fb.Get(hot).I32(u32c(0xC2B2AE35)).I32Xor().Set(hot)
			fb.End()
		}
		if p.Calls {
			fb.Get(acc).Get(idx).CallNamed("helper").Set(acc)
		}
	})

	// checksum: fold the f64 accumulator in exactly.
	fb.Get(hot)
	fb.Get(facc).I64ReinterpretF64().I32WrapI64().I32Xor()
	fb.Get(facc).I64ReinterpretF64().I64(32).I64ShrU().I32WrapI64().I32Xor()
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// profileKernel wraps a profile as a Kernel.
func profileKernel(p Profile, args, testArgs uint64) Kernel {
	return Kernel{
		Name:         p.Name,
		Build:        func(native bool) *ir.Module { return BuildProfile(p, native) },
		Entry:        "run",
		Args:         []uint64{args},
		TestArgs:     []uint64{testArgs},
		PtrSensitive: p.Chase > 0,
	}
}
