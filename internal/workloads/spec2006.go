package workloads

// Spec2006 returns the Wasm-compatible SPEC CPU 2006 subset of §6.1
// (Figure 3 / Table 2), as profile-calibrated synthetic kernels. Each
// profile encodes the benchmark's published character:
//
//	401_bzip2       byte-granular compression: loads/stores + branches
//	429_mcf         network simplex: dominated by pointer chasing over a
//	                multi-MB working set (faster under Wasm: 4-byte links)
//	433_milc        lattice QCD: streaming f64 arithmetic
//	444_namd        molecular dynamics: dense f64 with small working set
//	445_gobmk       go engine: branchy board scans, many calls
//	458_sjeng       chess: bit manipulation, branches, recursion-like calls
//	462_libquantum  quantum simulation: streaming integer sweeps (large ws)
//	464_h264ref     video encoding: block SAD — dense byte loads, sequential
//	470_lbm         fluid dynamics: streaming f64 with stores
//	473_astar       path-finding: a very tight loop of dependent memory ops
//	                (the paper's Segue outlier: prefix bytes visible)
func Spec2006() Suite {
	ks := []Kernel{
		profileKernel(Profile{
			Name: "401_bzip2", IntLoads: 5, IntStores: 2, ALU: 4, Branches: 3,
			WorkingSetKB: 256, Sequential: true,
		}, 300000, 400),
		profileKernel(Profile{
			Name: "429_mcf", IntLoads: 1, ALU: 2, Chase: 3, Branches: 1,
			WorkingSetKB: 4096,
		}, 400000, 300),
		profileKernel(Profile{
			Name: "433_milc", F64Loads: 5, F64Stores: 2, F64ALU: 4, ALU: 1,
			WorkingSetKB: 1024, Sequential: true,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "444_namd", F64Loads: 4, F64ALU: 7, ALU: 1,
			WorkingSetKB: 64,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "445_gobmk", IntLoads: 4, IntStores: 1, ALU: 3, Branches: 4, Calls: true,
			WorkingSetKB: 128,
		}, 300000, 400),
		profileKernel(Profile{
			Name: "458_sjeng", IntLoads: 3, ALU: 6, Branches: 3, Calls: true,
			WorkingSetKB: 64,
		}, 300000, 400),
		profileKernel(Profile{
			Name: "462_libquantum", IntLoads: 3, IntStores: 2, ALU: 2,
			WorkingSetKB: 4096, Sequential: true,
		}, 500000, 500),
		profileKernel(Profile{
			Name: "464_h264ref", IntLoads: 7, IntStores: 2, ALU: 4,
			WorkingSetKB: 256, Sequential: true,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "470_lbm", F64Loads: 6, F64Stores: 3, F64ALU: 5,
			WorkingSetKB: 4096, Sequential: true,
		}, 200000, 300),
		profileKernel(Profile{
			Name: "473_astar", IntLoads: 5, IntStores: 1, ALU: 2, Branches: 1,
			WorkingSetKB: 256, PlainAddr: true,
		}, 350000, 300),
	}
	return Suite{Name: "spec2006", Kernels: ks}
}

// Spec2017 returns the SPECrate 2017 C/C++ subset used by the LFI
// evaluation (§6.3, Figure 5) — the same 14 benchmarks as the prior LFI
// work, again as calibrated profiles.
func Spec2017() Suite {
	ks := []Kernel{
		profileKernel(Profile{
			Name: "502_gcc_r", IntLoads: 5, IntStores: 2, ALU: 3, Branches: 4, Calls: true, Chase: 1,
			WorkingSetKB: 1024,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "505_mcf_r", IntLoads: 1, ALU: 2, Chase: 3, Branches: 1,
			WorkingSetKB: 4096,
		}, 350000, 300),
		profileKernel(Profile{
			Name: "508_namd_r", F64Loads: 4, F64ALU: 7, ALU: 1,
			WorkingSetKB: 64,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "510_parest_r", F64Loads: 5, F64Stores: 2, F64ALU: 4, ALU: 1, Branches: 1,
			WorkingSetKB: 2048,
		}, 200000, 300),
		profileKernel(Profile{
			Name: "511_povray_r", F64Loads: 3, F64ALU: 5, ALU: 2, Branches: 3, Calls: true,
			WorkingSetKB: 128,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "519_lbm_r", F64Loads: 6, F64Stores: 3, F64ALU: 5,
			WorkingSetKB: 4096, Sequential: true,
		}, 200000, 300),
		profileKernel(Profile{
			Name: "520_omnetpp_r", IntLoads: 4, IntStores: 1, ALU: 2, Branches: 3, Chase: 2, Calls: true,
			WorkingSetKB: 2048,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "523_xalancbmk_r", IntLoads: 5, IntStores: 1, ALU: 3, Branches: 3, Chase: 1, Calls: true,
			WorkingSetKB: 1024,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "525_x264_r", IntLoads: 7, IntStores: 2, ALU: 5,
			WorkingSetKB: 512, Sequential: true,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "531_deepsjeng_r", IntLoads: 3, ALU: 6, Branches: 3, Calls: true,
			WorkingSetKB: 128,
		}, 300000, 400),
		profileKernel(Profile{
			Name: "538_imagick_r", F64Loads: 5, F64Stores: 2, F64ALU: 5, ALU: 1,
			WorkingSetKB: 1024, Sequential: true,
		}, 200000, 300),
		profileKernel(Profile{
			Name: "541_leela_r", IntLoads: 4, ALU: 3, Branches: 4, Calls: true,
			WorkingSetKB: 256,
		}, 300000, 400),
		profileKernel(Profile{
			Name: "544_nab_r", F64Loads: 4, F64ALU: 6, ALU: 2,
			WorkingSetKB: 256,
		}, 250000, 300),
		profileKernel(Profile{
			Name: "557_xz_r", IntLoads: 5, IntStores: 2, ALU: 4, Branches: 2,
			WorkingSetKB: 2048, Sequential: true,
		}, 250000, 300),
	}
	return Suite{Name: "spec2017", Kernels: ks}
}
