package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// FaaS returns the three edge-platform request handlers of §6.4.3:
// HTML templating, hash-based load balancing, and regular-expression
// filtering of URLs (the DFA is compiled host-side and shipped as a
// data segment, the way edge platforms precompile filters).
func FaaS() Suite {
	return Suite{Name: "faas", Kernels: []Kernel{
		{Name: "html-templating", Build: buildFaasTemplate, Entry: "run", Args: []uint64{300}, TestArgs: []uint64{3}},
		{Name: "hash-load-balance", Build: buildFaasHash, Entry: "run", Args: []uint64{4000}, TestArgs: []uint64{40}},
		{Name: "regex-filtering", Build: buildFaasRegex, Entry: "run", Args: []uint64{2000}, TestArgs: []uint64{30}},
	}}
}

const (
	faasURLBase   = 0 // 256 URLs x 64 bytes
	faasURLCount  = 256
	faasURLStride = 64
)

// faasURLs generates the URL corpus: a mix of API paths that do and do
// not match the filter pattern.
func faasURLs() []byte {
	out := make([]byte, faasURLCount*faasURLStride)
	for i := 0; i < faasURLCount; i++ {
		var s string
		switch i % 4 {
		case 0:
			s = fmt.Sprintf("/api/v%d/users/%d/profile", i%3+1, i*37)
		case 1:
			s = fmt.Sprintf("/static/assets/img_%d.png", i)
		case 2:
			s = fmt.Sprintf("/api/v%d/orders/%d", i%5, i*13)
		default:
			s = fmt.Sprintf("/health?probe=%d", i)
		}
		copy(out[i*faasURLStride:], s)
	}
	return out
}

// buildFaasTemplate renders an HTML template with $N placeholders
// substituted from a value table.
func buildFaasTemplate(bool) *ir.Module {
	const (
		tmplBase  = 0
		valsBase  = 4096 // 10 values x 32 bytes, NUL padded
		outBase   = 8192
		tmplLimit = 4000
	)
	m := ir.NewModule("html-templating", 2, 2)
	tmpl := []byte("<html><head><title>$0</title></head><body><h1>Hello $1!</h1><p>Your plan: $2, region $3.</p><ul>")
	for i := 0; i < 12; i++ {
		tmpl = append(tmpl, []byte(fmt.Sprintf("<li>item %d: $%d</li>", i, i%10))...)
	}
	tmpl = append(tmpl, []byte("</ul><footer>$9</footer></body></html>")...)
	m.AddData(tmplBase, tmpl)
	vals := make([]byte, 10*32)
	for i := 0; i < 10; i++ {
		copy(vals[i*32:], fmt.Sprintf("value-%d-xyz", i*7))
	}
	m.AddData(valsBase, vals)

	const (
		n   = 0
		i   = 1 // template cursor
		o   = 2 // output cursor
		it  = 3
		c   = 4 // current byte
		v   = 5 // value index / cursor
		acc = 6
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	tl := int32(len(tmpl))
	fb.LoopNDyn(it, n, 0, 1, func() {
		fb.I32(0).Set(i)
		fb.I32(0).Set(o)
		fb.While(func() { fb.Get(i).I32(tl).I32LtS() }, func() {
			fb.Get(i).I32Load8U(tmplBase).Set(c)
			fb.Get(c).I32('$').I32Eq()
			fb.If()
			// substitute value[digit]
			fb.Get(i).I32Load8U(tmplBase + 1).I32('0').I32Sub().I32(5).I32Shl().Set(v)
			fb.While(func() {
				// value bytes until NUL
				fb.Get(v).I32Load8U(valsBase).I32(0).I32Ne()
			}, func() {
				fb.Get(o).Get(v).I32Load8U(valsBase).I32Store8(outBase)
				fb.Get(o).I32(1).I32Add().Set(o)
				fb.Get(v).I32(1).I32Add().Set(v)
			})
			fb.Get(i).I32(2).I32Add().Set(i)
			fb.Else()
			fb.Get(o).Get(c).I32Store8(outBase)
			fb.Get(o).I32(1).I32Add().Set(o)
			fb.Get(i).I32(1).I32Add().Set(i)
			fb.End()
		})
		// fold output length and a sample byte into the checksum
		fb.Get(acc).Get(o).I32Add()
		fb.Get(o).I32(1).I32ShrU().I32Load8U(outBase).I32Add()
		fb.Set(acc)
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// buildFaasHash FNV-hashes request URLs and tallies per-backend
// histogram counts.
func buildFaasHash(bool) *ir.Module {
	const histBase = 32768
	m := ir.NewModule("hash-load-balance", 1, 1)
	m.AddData(faasURLBase, faasURLs())
	const (
		n   = 0
		it  = 1
		i   = 2
		h   = 3
		c   = 4
		acc = 5
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(it, n, 0, 1, func() {
		// url = urls[it % 256]
		fb.Get(it).I32(faasURLCount - 1).I32And().I32(6).I32Shl().Set(i)
		fb.I32(u32c(2166136261)).Set(h)
		fb.While(func() {
			fb.Get(i).I32Load8U(faasURLBase).Tee(c).I32(0).I32Ne()
		}, func() {
			fb.Get(h).Get(c).I32Xor().I32(16777619).I32Mul().Set(h)
			fb.Get(i).I32(1).I32Add().Set(i)
		})
		// histogram[h % 8]++
		fb.Get(h).I32(7).I32And().I32(2).I32Shl()
		fb.Get(h).I32(7).I32And().I32(2).I32Shl().I32Load(histBase)
		fb.I32(1).I32Add()
		fb.I32Store(histBase)
		fb.Get(acc).Get(h).I32Xor().Set(acc)
	})
	// fold histogram
	fb.LoopN(i, 0, 8, 1, func() {
		fb.Get(i).I32(2).I32Shl().I32Load(histBase).Get(acc).I32(5).I32Rotl().I32Add().Set(acc)
	})
	fb.Get(acc)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}

// regexDFA compiles the filter pattern ^/api/v[0-9]+/users/ into a DFA
// transition table (states x 256 bytes), host-side.
func regexDFA() (table []byte, accept int) {
	// States: 0../api/v prefix (7), 7 = first digit seen, 8../users/
	// suffix (7 more), 15 = accept (sticky), 16 = reject (sticky).
	const (
		nStates = 17
		acc     = 15
		rej     = 16
	)
	table = make([]byte, nStates*256)
	set := func(state int, ch byte, next int) { table[state*256+int(ch)] = byte(next) }
	fill := func(state, next int) {
		for c := 0; c < 256; c++ {
			table[state*256+c] = byte(next)
		}
	}
	for s := 0; s < nStates; s++ {
		fill(s, rej)
	}
	prefix := "/api/v"
	for i, ch := range []byte(prefix) {
		set(i, ch, i+1)
	}
	// state 6: expect digits
	for d := byte('0'); d <= '9'; d++ {
		set(6, d, 7)
		set(7, d, 7)
	}
	suffix := "/users/"
	// state 7 on '/' begins the suffix; the final suffix byte accepts.
	set(7, suffix[0], 8)
	for i := 1; i < len(suffix); i++ {
		next := 8 + i
		if i == len(suffix)-1 {
			next = acc
		}
		set(7+i, suffix[i], next)
	}
	fill(acc, acc) // accepting is sticky
	return table, acc
}

// buildFaasRegex runs the DFA over each URL, counting matches.
func buildFaasRegex(bool) *ir.Module {
	const dfaBase = 16384
	m := ir.NewModule("regex-filtering", 1, 1)
	m.AddData(faasURLBase, faasURLs())
	table, accept := regexDFA()
	m.AddData(dfaBase, table)
	const (
		n       = 0
		it      = 1
		i       = 2
		state   = 3
		c       = 4
		matches = 5
	)
	fb := m.NewFunc("run", ir.Sig([]ir.ValType{ir.I32}, []ir.ValType{ir.I32}),
		ir.I32, ir.I32, ir.I32, ir.I32, ir.I32)
	fb.LoopNDyn(it, n, 0, 1, func() {
		fb.Get(it).I32(faasURLCount - 1).I32And().I32(6).I32Shl().Set(i)
		fb.I32(0).Set(state)
		fb.While(func() {
			fb.Get(i).I32Load8U(faasURLBase).Tee(c).I32(0).I32Ne()
		}, func() {
			// state = dfa[state*256 + c]
			fb.Get(state).I32(8).I32Shl().Get(c).I32Add().I32Load8U(dfaBase).Set(state)
			fb.Get(i).I32(1).I32Add().Set(i)
		})
		fb.Get(state).I32(int32(accept)).I32Eq()
		fb.If()
		fb.Get(matches).I32(1).I32Add().Set(matches)
		fb.End()
	})
	fb.Get(matches)
	fb.MustBuild()
	m.MustExport("run")
	return mustValidate(m)
}
