// Package repro's root bench harness maps every table and figure of the
// paper's evaluation to a testing.B benchmark. Each benchmark runs the
// corresponding experiment (internal/exp) on the simulated machine and
// prints the same rows the paper reports; reported metrics summarize
// the headline numbers.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The SPEC-suite figures take tens of seconds each; cmd/benchtab runs
// the same experiments with finer selection.
package repro

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// -j sets the experiment engine's worker count (0 = all CPUs), e.g.
// go test -bench=Fig3 -j 4
var parallelFlag = flag.Int("j", 0, "experiment engine parallelism (0 = NumCPU)")

func TestMain(m *testing.M) {
	flag.Parse()
	exp.SetParallelism(*parallelFlag)
	// REPRO_TIER selects the execution tier for every machine: slow (the
	// differential-testing oracle), fast (predecoded), or fused (the
	// default, profile-guided superinstructions) — for before/after
	// comparisons. REPRO_SLOWPATH=1 is the legacy spelling of
	// REPRO_TIER=slow.
	if s := os.Getenv("REPRO_TIER"); s != "" {
		tier, err := cpu.ParseTier(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "REPRO_TIER: %v\n", err)
			os.Exit(2)
		}
		cpu.SetDefaultTier(tier)
	} else if os.Getenv("REPRO_SLOWPATH") != "" {
		cpu.SetDefaultTier(cpu.TierSlow)
	}
	os.Exit(m.Run())
}

// expResult is one experiment's measured cost: the experiments are
// deterministic, so each runs exactly once per process and the result
// is cached for repeat benchmark iterations.
type expResult struct {
	text      string
	wallSecs  float64
	simCycles float64
}

var expCache sync.Map

// runExperiment executes the experiment once, prints its table exactly
// once, and reports the real per-run cost via metrics — wall-clock
// seconds and simulated cycles — instead of timing b.N cache-hit
// iterations that do no work.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	v, ok := expCache.Load(id)
	if !ok {
		exp.TakeSimCycles() // exclude cycles other experiments accumulated
		start := time.Now()
		t, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		r := expResult{
			text:      t.Text(),
			wallSecs:  time.Since(start).Seconds(),
			simCycles: exp.TakeSimCycles(),
		}
		fmt.Println()
		fmt.Print(r.text)
		v, _ = expCache.LoadOrStore(id, r)
	}
	r := v.(expResult)
	b.ReportMetric(r.wallSecs, "wall-s/exp")
	b.ReportMetric(r.simCycles, "sim-cycles/exp")
	// b.N iterations did no additional work; zero the meaningless ns/op.
	b.ReportMetric(0, "ns/op")
}

// --- Segue (§6.1–§6.3) ---

func BenchmarkFig1Patterns(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig3SpecWasm2c(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkBoundsCheckSegue(b *testing.B)   { runExperiment(b, "boundsnote") }
func BenchmarkTable2BinarySize(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkFirefoxFont(b *testing.B)        { runExperiment(b, "firefox-font") }
func BenchmarkFirefoxXML(b *testing.B)         { runExperiment(b, "firefox-xml") }
func BenchmarkFig4SightglassWAMR(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkPolybenchWAMR(b *testing.B)      { runExperiment(b, "polybench") }
func BenchmarkDhrystoneWAMR(b *testing.B)      { runExperiment(b, "dhrystone") }
func BenchmarkFig5SpecLFI(b *testing.B)        { runExperiment(b, "fig5") }

// --- ColorGuard (§6.4, §5.2, §7) ---

func BenchmarkTransitionCost(b *testing.B)       { runExperiment(b, "transition") }
func BenchmarkScalingSlots(b *testing.B)         { runExperiment(b, "scaling") }
func BenchmarkFig6FaasThroughput(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7aContextSwitches(b *testing.B) { runExperiment(b, "fig7a") }
func BenchmarkFig7bDTLBMisses(b *testing.B)      { runExperiment(b, "fig7b") }
func BenchmarkTable1Verification(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkMTEInitTeardown(b *testing.B)      { runExperiment(b, "mte") }

// --- Ablations (DESIGN.md design choices) ---

func BenchmarkAblationSegueParts(b *testing.B)    { runExperiment(b, "ablation-segue") }
func BenchmarkAblationGuardGeometry(b *testing.B) { runExperiment(b, "ablation-guards") }
func BenchmarkAblationStripeCount(b *testing.B)   { runExperiment(b, "ablation-stripes") }
func BenchmarkAblationFSGSBASE(b *testing.B)      { runExperiment(b, "ablation-fsgsbase") }

// --- True throughput benchmarks of the substrate itself ---

// BenchmarkCompileSieve measures SFI compilation speed.
func BenchmarkCompileSieve(b *testing.B) {
	k, err := workloads.Sightglass().Find("sieve")
	if err != nil {
		b.Fatal(err)
	}
	m := k.Build(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sfi.Compile(m, sfi.DefaultConfig(sfi.ModeSegue)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulator measures simulated-instruction throughput.
func BenchmarkEmulator(b *testing.B) {
	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		b.Fatal(err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var before uint64
	for i := 0; i < b.N; i++ {
		if _, err := inst.Invoke("run", 10000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inst.Mach.Stats.Insts-before)/float64(b.N), "sim-insts/op")
}

// benchEmulatorTelemetry is BenchmarkEmulator with the telemetry state
// pinned. Comparing the Off and On variants bounds what the
// instrumentation costs the dispatch loop: Off must stay within the
// noise of BenchmarkEmulator (the gate is one atomic load per Run), and
// On pays only per-Run counter updates, never per-instruction work.
func benchEmulatorTelemetry(b *testing.B, on bool) {
	prev := telemetry.Enabled()
	telemetry.SetEnabled(on)
	defer telemetry.SetEnabled(prev)
	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		b.Fatal(err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Invoke("run", 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulatorTelemetryOff(b *testing.B) { benchEmulatorTelemetry(b, false) }
func BenchmarkEmulatorTelemetryOn(b *testing.B)  { benchEmulatorTelemetry(b, true) }

// BenchmarkInterp measures reference-interpreter throughput, for the
// differential-testing cost picture.
func BenchmarkInterp(b *testing.B) {
	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		b.Fatal(err)
	}
	interp, err := ir.NewInterp(k.Build(false), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Invoke("run", 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstantiate measures sandbox creation cost (the paper's
// microseconds-scale instantiation claim, §2).
func BenchmarkInstantiate(b *testing.B) {
	m := ir.NewModule("inst", 1, 1)
	fb := m.NewFunc("f", ir.Sig(nil, []ir.ValType{ir.I32}))
	fb.I32(1)
	fb.MustBuild()
	m.MustExport("f")
	mod, err := rt.CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true}); err != nil {
			b.Fatal(err)
		}
	}
}
