// Package repro's root bench harness maps every table and figure of the
// paper's evaluation to a testing.B benchmark. Each benchmark runs the
// corresponding experiment (internal/exp) on the simulated machine and
// prints the same rows the paper reports; reported metrics summarize
// the headline numbers.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The SPEC-suite figures take tens of seconds each; cmd/benchtab runs
// the same experiments with finer selection.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

// runExperiment executes the experiment once (cached across b.N
// iterations — the experiments are deterministic) and prints its table.
var expCache sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if cached, ok := expCache.Load(id); ok {
			_ = cached
			continue
		}
		t, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		expCache.Store(id, t)
		fmt.Println()
		fmt.Print(t.Text())
	}
}

// --- Segue (§6.1–§6.3) ---

func BenchmarkFig1Patterns(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig3SpecWasm2c(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkBoundsCheckSegue(b *testing.B)   { runExperiment(b, "boundsnote") }
func BenchmarkTable2BinarySize(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkFirefoxFont(b *testing.B)        { runExperiment(b, "firefox-font") }
func BenchmarkFirefoxXML(b *testing.B)         { runExperiment(b, "firefox-xml") }
func BenchmarkFig4SightglassWAMR(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkPolybenchWAMR(b *testing.B)      { runExperiment(b, "polybench") }
func BenchmarkDhrystoneWAMR(b *testing.B)      { runExperiment(b, "dhrystone") }
func BenchmarkFig5SpecLFI(b *testing.B)        { runExperiment(b, "fig5") }

// --- ColorGuard (§6.4, §5.2, §7) ---

func BenchmarkTransitionCost(b *testing.B)       { runExperiment(b, "transition") }
func BenchmarkScalingSlots(b *testing.B)         { runExperiment(b, "scaling") }
func BenchmarkFig6FaasThroughput(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7aContextSwitches(b *testing.B) { runExperiment(b, "fig7a") }
func BenchmarkFig7bDTLBMisses(b *testing.B)      { runExperiment(b, "fig7b") }
func BenchmarkTable1Verification(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkMTEInitTeardown(b *testing.B)      { runExperiment(b, "mte") }

// --- Ablations (DESIGN.md design choices) ---

func BenchmarkAblationSegueParts(b *testing.B)    { runExperiment(b, "ablation-segue") }
func BenchmarkAblationGuardGeometry(b *testing.B) { runExperiment(b, "ablation-guards") }
func BenchmarkAblationStripeCount(b *testing.B)   { runExperiment(b, "ablation-stripes") }
func BenchmarkAblationFSGSBASE(b *testing.B)      { runExperiment(b, "ablation-fsgsbase") }

// --- True throughput benchmarks of the substrate itself ---

// BenchmarkCompileSieve measures SFI compilation speed.
func BenchmarkCompileSieve(b *testing.B) {
	k, err := workloads.Sightglass().Find("sieve")
	if err != nil {
		b.Fatal(err)
	}
	m := k.Build(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sfi.Compile(m, sfi.DefaultConfig(sfi.ModeSegue)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulator measures simulated-instruction throughput.
func BenchmarkEmulator(b *testing.B) {
	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := rt.CompileModule(k.Build(false), sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		b.Fatal(err)
	}
	inst, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var before uint64
	for i := 0; i < b.N; i++ {
		if _, err := inst.Invoke("run", 10000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inst.Mach.Stats.Insts-before)/float64(b.N), "sim-insts/op")
}

// BenchmarkInterp measures reference-interpreter throughput, for the
// differential-testing cost picture.
func BenchmarkInterp(b *testing.B) {
	k, err := workloads.Sightglass().Find("seqhash")
	if err != nil {
		b.Fatal(err)
	}
	interp, err := ir.NewInterp(k.Build(false), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Invoke("run", 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstantiate measures sandbox creation cost (the paper's
// microseconds-scale instantiation claim, §2).
func BenchmarkInstantiate(b *testing.B) {
	m := ir.NewModule("inst", 1, 1)
	fb := m.NewFunc("f", ir.Sig(nil, []ir.ValType{ir.I32}))
	fb.I32(1)
	fb.MustBuild()
	m.MustExport("f")
	mod, err := rt.CompileModule(m, sfi.DefaultConfig(sfi.ModeSegue))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.NewInstance(mod, rt.InstanceOptions{FSGSBASE: true}); err != nil {
			b.Fatal(err)
		}
	}
}
