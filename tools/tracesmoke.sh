#!/bin/sh
# Trace smoke test: boot faasd with -trace, drive a request burst,
# SIGTERM-drain, then validate the emitted Chrome trace-event file —
# it must parse as JSON and contain complete ('X') serving phase spans
# (queue, exec, transitions) on the wall-time track, one tid per
# dispatcher shard.
#
# Run from the repository root: sh tools/tracesmoke.sh
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/faasd" ./cmd/faasd
go build -o "$tmp/faasload" ./cmd/faasload

"$tmp/faasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -shards 2 \
	-trace "$tmp/serve.trace.json" >"$tmp/faasd.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "tracesmoke: faasd never published its address" >&2
		cat "$tmp/faasd.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "tracesmoke: faasd on $addr"

"$tmp/faasload" -url "http://$addr" -smoke -count 16

# The trace is written on drain, so SIGTERM first and wait for exit.
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "tracesmoke: faasd did not drain within 10s" >&2
		exit 1
	fi
	sleep 0.1
done
if ! wait "$pid"; then
	echo "tracesmoke: faasd exited non-zero after SIGTERM" >&2
	cat "$tmp/faasd.log" >&2
	exit 1
fi
pid=""
[ -s "$tmp/serve.trace.json" ] || {
	echo "tracesmoke: no trace file written" >&2
	cat "$tmp/faasd.log" >&2
	exit 1
}

python3 - "$tmp/serve.trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
evs = trace["traceEvents"]
# Complete spans in the "serve" category live on the wall-time track
# (pid 2); tid is the dispatcher shard that owned the request.
spans = [e for e in evs if e.get("cat") == "serve" and e["ph"] == "X"]
assert spans, "no serve-category phase spans in the trace"
names = {e["name"] for e in spans}
want = {"queue", "exec", "transition_in", "transition_out"}
missing = want - names
assert not missing, f"phase spans missing from the trace: {missing}"
for e in spans:
    assert e["pid"] == 2, e          # wall-time track
    assert 0 <= e["tid"] < 2, e      # one track per shard (-shards 2)
    assert e.get("dur", 0) >= 0, e   # "dur" is omitted when zero
print(f"tracesmoke: {len(spans)} serve phase spans across phases {sorted(names)}")
EOF

echo "tracesmoke: ok"
