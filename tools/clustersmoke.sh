#!/bin/sh
# Cluster smoke test: boot faasrouter supervising 3 faasd workers on
# ephemeral ports, prove the cluster path end to end — the router's
# /healthz shows all workers up, a faasload burst through the router
# completes with zero routing-layer failures, a short bursty trace
# makes the telemetry-driven autoscaler record grow decisions
# (cluster.autoscale.grow), repeat traffic hits the workers' keep-warm
# pools — then SIGTERM and require a clean drain (exit 0).
#
# Run from the repository root: sh tools/clustersmoke.sh
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/faasd" ./cmd/faasd
go build -o "$tmp/faasrouter" ./cmd/faasrouter
go build -o "$tmp/faasload" ./cmd/faasload

"$tmp/faasrouter" -faasd "$tmp/faasd" -n 3 -dir "$tmp" \
	-addr 127.0.0.1:0 -addrfile "$tmp/router.addr" \
	-scaleinterval 300ms -growmisses 2 >"$tmp/router.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/router.addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "clustersmoke: faasrouter never published its address" >&2
		cat "$tmp/router.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/router.addr")
echo "clustersmoke: faasrouter on $addr"

# All three supervised workers must be registered and healthy.
python3 - "$addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
h = json.load(urllib.request.urlopen(f"http://{addr}/healthz"))
workers = h["workers"]
assert len(workers) == 3, workers
assert all(w["healthy"] for w in workers), workers
print(f"clustersmoke: {len(workers)} workers healthy")
EOF

# Burst through the router: faasload -smoke exits 1 on any error, so a
# routing-layer 5xx (502 no-healthy-worker) fails the script here.
"$tmp/faasload" -url "http://$addr" -smoke -count 30

# Trace-driven bursty load across a kernel mix: the cold-start bursts
# are the autoscaler's grow signal.
"$tmp/faasload" -url "http://$addr" -shape bursty -rps 20 -peak 200 \
	-seconds 3 -seed 7 -mix "regex-filtering:6,hash-load-balance:3,html-templating:1"

# The autoscaler ticks every 300ms; give it a moment to see the burst's
# cold-start delta, then require grow decisions and zero routing 5xx.
python3 - "$addr" <<'EOF'
import json, sys, time, urllib.request
addr = sys.argv[1]
for _ in range(40):
    m = json.load(urllib.request.urlopen(f"http://{addr}/metrics"))
    if m["counters"].get("cluster.autoscale.grow", 0) >= 1:
        break
    time.sleep(0.25)
c = m["counters"]
assert c.get("cluster.autoscale.grow", 0) >= 1, c
assert c.get("cluster.autoscale.ticks", 0) >= 2, c
assert c.get("cluster.router.no_worker", 0) == 0, c
assert c.get("cluster.router.requests", 0) >= 30, c
assert c.get("cluster.router.proxied", 0) >= 30, c
print(f"clustersmoke: {c['cluster.router.proxied']} proxied, "
      f"{c['cluster.autoscale.grow']} grow decisions, zero routing 5xx")
EOF

# Affinity: repeats of one key land on one worker's keep-warm pool.
# The router's /workers lists the worker base URLs; after a repeat
# burst, cluster-wide warm hits must be positive.
"$tmp/faasload" -url "http://$addr" -smoke -count 12 -kernel regex-filtering
python3 - "$addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
workers = json.load(urllib.request.urlopen(f"http://{addr}/workers"))
hits = 0
for url in workers.values():
    m = json.load(urllib.request.urlopen(f"{url}/metrics"))
    hits += m["counters"].get("server.warm.hits", 0)
assert hits >= 10, f"cluster-wide warm hits = {hits}"
print(f"clustersmoke: {hits} keep-warm hits across the cluster")
EOF

# Graceful drain: SIGTERM, workers drain, router exits 0.
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "clustersmoke: faasrouter did not drain within 20s" >&2
		cat "$tmp/router.log" >&2
		exit 1
	fi
	sleep 0.1
done
if ! wait "$pid"; then
	echo "clustersmoke: faasrouter exited non-zero after SIGTERM" >&2
	cat "$tmp/router.log" >&2
	exit 1
fi
pid=""
grep -q "drained" "$tmp/router.log" || {
	echo "clustersmoke: no drain line in the log" >&2
	cat "$tmp/router.log" >&2
	exit 1
}
echo "clustersmoke: clean drain"
