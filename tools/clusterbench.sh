#!/bin/sh
# Cluster benchmark: drive the same seeded trace (bursty arrivals,
# heavy-tailed batches, 3-kernel mix) through a supervised cluster once
# per isolation backend, and record a "cluster" section in
# SERVE_results.json: per-backend trace step results plus the
# warm-instance density table the paper's scalability argument turns on.
#
# Density = pinned warm instances per OS process. ColorGuard pins many
# instances inside each worker process (same-address-space slots);
# multiproc is process-per-instance by construction, so every pinned
# instance is a whole process. Same trace, same seed for both, so the
# simulated latency percentiles are comparable.
#
# Knobs from the environment:
#
#	WORKERS=2              worker processes per run
#	BACKENDS="colorguard multiproc"
#	RPS=20 PEAK=150        trace base/peak rates (req/s)
#	SECONDS_PER_STEP=3     trace duration per backend
#	SEED=11                trace seed (arrivals, mix, batches)
#	OUT=SERVE_results.json merged output (cluster key added/replaced)
#
# Run from the repository root: sh tools/clusterbench.sh
set -eu

WORKERS=${WORKERS:-2}
BACKENDS=${BACKENDS:-"colorguard multiproc"}
RPS=${RPS:-20}
PEAK=${PEAK:-150}
SECONDS_PER_STEP=${SECONDS_PER_STEP:-3}
SEED=${SEED:-11}
OUT=${OUT:-SERVE_results.json}
MIX="regex-filtering:6,hash-load-balance:3,html-templating:1"

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/faasd" ./cmd/faasd
go build -o "$tmp/faasrouter" ./cmd/faasrouter
go build -o "$tmp/faasload" ./cmd/faasload

for backend in $BACKENDS; do
	rm -f "$tmp/router.addr"
	mkdir -p "$tmp/$backend"
	"$tmp/faasrouter" -faasd "$tmp/faasd" -n "$WORKERS" -dir "$tmp/$backend" \
		-addr 127.0.0.1:0 -addrfile "$tmp/router.addr" \
		-scaleinterval 300ms -growmisses 2 \
		-workerargs "-slots 8" >"$tmp/$backend/router.log" 2>&1 &
	pid=$!
	i=0
	while [ ! -s "$tmp/router.addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 200 ]; then
			echo "clusterbench: faasrouter never published its address" >&2
			cat "$tmp/$backend/router.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$tmp/router.addr")
	echo "clusterbench: $backend cluster on $addr ($WORKERS workers)"

	"$tmp/faasload" -url "http://$addr" -backend "$backend" \
		-shape bursty -rps "$RPS" -peak "$PEAK" -seconds "$SECONDS_PER_STEP" \
		-seed "$SEED" -mix "$MIX" -json "$tmp/$backend/load.json"

	# Scrape router counters and per-worker warm state before teardown.
	python3 - "$addr" "$backend" "$tmp" <<'EOF'
import json, sys, urllib.request
addr, backend, tmp = sys.argv[1:4]
router = json.load(urllib.request.urlopen(f"http://{addr}/metrics"))
workers = json.load(urllib.request.urlopen(f"http://{addr}/workers"))
pinned = 0
for url in workers.values():
    h = json.load(urllib.request.urlopen(f"{url}/healthz"))
    pinned += h["warm"]["pinned"]
with open(f"{tmp}/{backend}/scrape.json", "w") as f:
    json.dump({"pinned": pinned, "workers": len(workers),
               "router_counters": router["counters"]}, f)
EOF

	kill -TERM "$pid"
	i=0
	while kill -0 "$pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 200 ] && break
		sleep 0.1
	done
	pid=""
done

# Merge the per-backend results into OUT's "cluster" section and check
# the density claim: at matched trace (same seed, so comparable sim
# p99), colorguard must sustain more warm instances per process than
# multiproc, whose every pinned instance is its own process.
python3 - "$tmp" "$OUT" "$WORKERS" "$SEED" $BACKENDS <<'EOF'
import json, os, sys
tmp, out, workers, seed = sys.argv[1:5]
backends = sys.argv[5:]
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
cluster = {"workers": int(workers), "seed": int(seed),
           "steps": {}, "density": {}, "autoscale": {}}
for b in backends:
    with open(f"{tmp}/{b}/load.json") as f:
        load = json.load(f)
    with open(f"{tmp}/{b}/scrape.json") as f:
        scrape = json.load(f)
    step = load["steps"][0]
    cluster["steps"][b] = step
    pinned = scrape["pinned"]
    # Same-process backends host all of a worker's pinned instances in
    # one OS process; multiproc dedicates a process per instance.
    processes = pinned if b == "multiproc" else scrape["workers"]
    cluster["density"][b] = {
        "pinned": pinned,
        "processes": processes,
        "instances_per_process": pinned / processes if processes else 0.0,
    }
    rc = scrape["router_counters"]
    cluster["autoscale"][b] = {
        "grow": rc.get("cluster.autoscale.grow", 0),
        "shrink": rc.get("cluster.autoscale.shrink", 0),
        "ticks": rc.get("cluster.autoscale.ticks", 0),
    }
    print(f"clusterbench: {b}: {pinned} warm pinned / {processes} processes "
          f"= {cluster['density'][b]['instances_per_process']:.1f} per process, "
          f"sim p99 {step['sim_p99_us']:.2f}us, wall p99 {step['p99_ms']:.2f}ms")
if "colorguard" in cluster["density"] and "multiproc" in cluster["density"]:
    cg = cluster["density"]["colorguard"]["instances_per_process"]
    mp = cluster["density"]["multiproc"]["instances_per_process"]
    assert cg > mp, f"colorguard density {cg} not above multiproc {mp}"
    print(f"clusterbench: density colorguard {cg:.1f} > multiproc {mp:.1f} per process")
doc["cluster"] = cluster
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
echo "clusterbench: cluster section written to $OUT"
