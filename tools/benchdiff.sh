#!/bin/sh
# benchdiff.sh — wall-time deltas between the last two records of the
# perf trajectory (BENCH_history.jsonl, appended by `make results`).
#
# Usage: sh tools/benchdiff.sh [history-file]
set -eu

hist="${1:-BENCH_history.jsonl}"
if [ ! -f "$hist" ]; then
    echo "benchdiff: $hist not found (run \`make results\` first)" >&2
    exit 1
fi
lines=$(wc -l < "$hist")
if [ "$lines" -lt 2 ]; then
    echo "benchdiff: only $lines record(s) in $hist; need two to diff" >&2
    exit 1
fi

tail -n 2 "$hist" | python3 -c '
import json, sys

prev, cur = (json.loads(l) for l in sys.stdin if l.strip())
old = {r["id"]: r for r in prev["results"]}
print("benchdiff: %s (%s)  ->  %s (%s)"
      % (prev["time"], prev["tier"], cur["time"], cur["tier"]))
print("%-12s %9s %9s %8s" % ("experiment", "before s", "after s", "delta"))
for r in cur["results"]:
    b = old.get(r["id"])
    if b is None or not b["wall_seconds"]:
        print("%-12s %9s %9.2f %8s" % (r["id"], "-", r["wall_seconds"], "new"))
        continue
    ratio = b["wall_seconds"] / r["wall_seconds"] if r["wall_seconds"] else 0.0
    print("%-12s %9.2f %9.2f %7.2fx"
          % (r["id"], b["wall_seconds"], r["wall_seconds"], ratio))
for rid in old:
    if all(r["id"] != rid for r in cur["results"]):
        print("%-12s %9.2f %9s %8s" % (rid, old[rid]["wall_seconds"], "-", "gone"))
'
