#!/bin/sh
# benchdiff.sh — wall-time deltas between the last two records of the
# perf trajectory (BENCH_history.jsonl, appended by `make results`).
#
# Usage: sh tools/benchdiff.sh [-gate PCT] [history-file]
#
# With -gate PCT the script becomes a regression gate: it exits nonzero
# if any experiment in the latest record is more than PCT percent slower
# (wall time) than in the previous record. Experiments present in only
# one record never gate; records from different tiers never gate (the
# comparison would be meaningless); a history with fewer than two
# records is a skip (exit 0), not a failure, so the gate can be enforced
# in CI on fresh checkouts.
set -eu

gate=""
if [ "${1:-}" = "-gate" ]; then
    gate="${2:?benchdiff: -gate needs a percent threshold}"
    shift 2
fi

hist="${1:-BENCH_history.jsonl}"
if [ ! -f "$hist" ]; then
    if [ -n "$gate" ]; then
        echo "benchdiff: $hist not found; gate skipped (run \`make results\` to start a history)" >&2
        exit 0
    fi
    echo "benchdiff: $hist not found (run \`make results\` first)" >&2
    exit 1
fi
# Count records as non-empty lines, not newlines: `wc -l` undercounts
# by one when the final record lacks a trailing newline, which made a
# valid two-record history report "need two to diff" (and the CI gate
# silently skip). grep exits 1 on an all-blank file, so swallow that.
lines=$(grep -c . "$hist" || true)
if [ "$lines" -lt 2 ]; then
    if [ -n "$gate" ]; then
        echo "benchdiff: only $lines record(s) in $hist; gate skipped (need two to diff)" >&2
        exit 0
    fi
    echo "benchdiff: only $lines record(s) in $hist; need two to diff" >&2
    exit 1
fi

tail -n 2 "$hist" | GATE="$gate" python3 -c '
import json, os, sys

prev, cur = (json.loads(l) for l in sys.stdin if l.strip())
old = {r["id"]: r for r in prev["results"]}
print("benchdiff: %s (%s)  ->  %s (%s)"
      % (prev["time"], prev["tier"], cur["time"], cur["tier"]))
print("%-12s %9s %9s %8s" % ("experiment", "before s", "after s", "delta"))
regressed = []
for r in cur["results"]:
    b = old.get(r["id"])
    if b is None or not b["wall_seconds"]:
        print("%-12s %9s %9.2f %8s" % (r["id"], "-", r["wall_seconds"], "new"))
        continue
    ratio = b["wall_seconds"] / r["wall_seconds"] if r["wall_seconds"] else 0.0
    print("%-12s %9.2f %9.2f %7.2fx"
          % (r["id"], b["wall_seconds"], r["wall_seconds"], ratio))
    if r["wall_seconds"] > b["wall_seconds"]:
        slow = 100.0 * (r["wall_seconds"] / b["wall_seconds"] - 1.0)
        regressed.append((r["id"], slow))
for rid in old:
    if all(r["id"] != rid for r in cur["results"]):
        print("%-12s %9.2f %9s %8s" % (rid, old[rid]["wall_seconds"], "-", "gone"))

gate = os.environ.get("GATE")
if gate:
    if prev["tier"] != cur["tier"]:
        print("benchdiff: tiers differ (%s vs %s); gate skipped"
              % (prev["tier"], cur["tier"]))
        sys.exit(0)
    limit = float(gate)
    over = [(rid, slow) for rid, slow in regressed if slow > limit]
    for rid, slow in over:
        print("benchdiff: GATE: %s regressed %.1f%% (> %g%%)" % (rid, slow, limit))
    if over:
        sys.exit(1)
    print("benchdiff: gate ok (no experiment regressed more than %g%%)" % limit)
'
