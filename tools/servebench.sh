#!/bin/sh
# Serve benchmark: boot faasd, sweep an open-loop RPS ramp with
# faasload, and leave the throughput/latency trajectory per step in
# SERVE_results.json. Knobs come from the environment:
#
#	RAMP=100,200,400,800  rps steps (default below)
#	SECONDS_PER_STEP=2    seconds each step runs
#	KERNEL=regex-filtering
#	OUT=SERVE_results.json
#
# Run from the repository root: sh tools/servebench.sh
set -eu

RAMP=${RAMP:-100,200,400,800}
SECONDS_PER_STEP=${SECONDS_PER_STEP:-2}
KERNEL=${KERNEL:-regex-filtering}
OUT=${OUT:-SERVE_results.json}

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/faasd" ./cmd/faasd
go build -o "$tmp/faasload" ./cmd/faasload

"$tmp/faasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" >"$tmp/faasd.log" 2>&1 &
pid=$!
i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "servebench: faasd never published its address" >&2
		cat "$tmp/faasd.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "servebench: faasd on $addr, ramp $RAMP (${SECONDS_PER_STEP}s/step)"

"$tmp/faasload" -url "http://$addr" -kernel "$KERNEL" \
	-ramp "$RAMP" -seconds "$SECONDS_PER_STEP" -json "$OUT"

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && break
	sleep 0.1
done
pid=""
echo "servebench: trajectory in $OUT"
