#!/bin/sh
# Serve smoke test: boot faasd on an ephemeral port, prove the serving
# path end to end — /healthz answers, a faasload burst completes with
# zero errors, /metrics reports the request count, /debug/requests
# shows a well-formed phase-attributed request — then SIGTERM and
# require a clean drain (exit 0).
#
# Run from the repository root: sh tools/servesmoke.sh
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/faasd" ./cmd/faasd
go build -o "$tmp/faasload" ./cmd/faasload

"$tmp/faasd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" >"$tmp/faasd.log" 2>&1 &
pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "servesmoke: faasd never published its address" >&2
		cat "$tmp/faasd.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "servesmoke: faasd on $addr"

python3 - "$addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
h = json.load(urllib.request.urlopen(f"http://{addr}/healthz"))
assert h["status"] == "ok", h
EOF

"$tmp/faasload" -url "http://$addr" -smoke -count 24

python3 - "$addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
m = json.load(urllib.request.urlopen(f"http://{addr}/metrics"))
served = m["counters"]["server.requests"]
assert served >= 24, m["counters"]
assert m["counters"]["server.completed"] >= 24, m["counters"]
print(f"servesmoke: /metrics reports {served} requests")
EOF

# The flight recorder must hold well-formed attributed requests: a
# non-empty trace id, non-empty phases, and phase durations that sum to
# the recorded total (phase-sum conservation over the wire).
python3 - "$addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
d = json.load(urllib.request.urlopen(f"http://{addr}/debug/requests"))
assert d["spans_enabled"] is True, d
assert d["seen"] >= 24, d["seen"]
reqs = d["recent"] + d["slowest"]
assert reqs, "no attributed requests in the flight recorder"
for r in reqs:
    assert r["trace_id"], r
    assert r["kernel"], r
    assert r["phases"], r
    total = r["total_ns"]
    s = sum(r["phases"].values())
    assert abs(s - total) <= 1e-6 * total + 1, (s, total, r)
print(f"servesmoke: /debug/requests holds {len(reqs)} attributed requests, phases conserve")
EOF

# Graceful drain: SIGTERM, then the process must exit 0 by itself.
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "servesmoke: faasd did not drain within 10s" >&2
		exit 1
	fi
	sleep 0.1
done
if ! wait "$pid"; then
	echo "servesmoke: faasd exited non-zero after SIGTERM" >&2
	cat "$tmp/faasd.log" >&2
	exit 1
fi
pid=""
grep -q "drained" "$tmp/faasd.log" || {
	echo "servesmoke: no drain line in the log" >&2
	cat "$tmp/faasd.log" >&2
	exit 1
}
echo "servesmoke: clean drain"
