#!/bin/sh
# docscheck: keep the documentation spine true.
#
# 1. Every internal package (and every command) has a package comment.
# 2. ARCHITECTURE.md exists, is linked from README.md, and documents
#    every internal package.
# 3. The flags and experiment ids the docs advertise actually exist.
# 4. The documented commands run, in cheap smoke configurations —
#    including the fault-injection flags.
#
# Run via `make docscheck`; CI runs it on every push.
set -eu
cd "$(dirname "$0")/.."

fail=0
err() { echo "docscheck: $*" >&2; fail=1; }

# --- 1. package comments -------------------------------------------------
for dir in internal/*/ cmd/*/; do
    pkg=$(basename "$dir")
    # A package comment is a comment line immediately preceding the
    # package clause in at least one file of the package.
    if ! awk 'prev ~ /^(\/\/|\*\/)/ && $0 ~ /^package / { found=1 } { prev=$0 } END { exit !found }' "$dir"*.go; then
        err "$dir has no package comment (godoc synopsis)"
    fi
done

# --- 2. the architecture spine ------------------------------------------
[ -f ARCHITECTURE.md ] || err "ARCHITECTURE.md missing"
grep -q 'ARCHITECTURE\.md' README.md || err "README.md does not link ARCHITECTURE.md"
for dir in internal/*/; do
    pkg=$(basename "$dir")
    grep -q "internal/$pkg" ARCHITECTURE.md || err "ARCHITECTURE.md does not mention internal/$pkg"
done

# --- 3. advertised ids and flags exist ----------------------------------
go build ./... || err "go build failed"
ids=$(go run ./cmd/benchtab -list)
for id in transition transitions scaling faultsweep backend-matrix attribution hardening; do
    echo "$ids" | grep -q "^$id " || err "experiment id $id (documented) not in benchtab -list"
done
flags=$(go run ./cmd/benchtab -help 2>&1 || true)
for f in tier scheme harden history compare results metrics trace pprof j; do
    echo "$flags" | grep -q -- "-$f" || err "benchtab flag -$f (documented) missing"
done
flags=$(go run ./cmd/faassim -help 2>&1 || true)
for f in faultrate faultseed timeout retries shed backend scheme harden coldstart latency phases; do
    echo "$flags" | grep -q -- "-$f" || err "faassim flag -$f (documented) missing"
done
flags=$(go run ./cmd/faasd -help 2>&1 || true)
for f in addr addrfile kernels backend scheme harden shards workers queue maxinflight slots warm timeout breakerfails tier spans trace; do
    echo "$flags" | grep -q -- "-$f" || err "faasd flag -$f (documented) missing"
done
flags=$(go run ./cmd/faasload -help 2>&1 || true)
for f in url kernel scheme rps seconds ramp json smoke strict shape peak period burstlen burstgap mix alpha nmax seed; do
    echo "$flags" | grep -q -- "-$f" || err "faasload flag -$f (documented) missing"
done
flags=$(go run ./cmd/faasrouter -help 2>&1 || true)
for f in addr addrfile faasd n workerargs attach dir vnodes spread loadfactor autoscale scaleinterval growmisses idleticks cooldownticks maxwarm draintimeout; do
    echo "$flags" | grep -q -- "-$f" || err "faasrouter flag -$f (documented) missing"
done

# --- operator's guide ----------------------------------------------------
[ -f docs/OPERATIONS.md ] || err "docs/OPERATIONS.md missing"
grep -q 'OPERATIONS\.md' README.md || err "README.md does not link docs/OPERATIONS.md"
for f in loadfactor scaleinterval growmisses idleticks maxwarm; do
    grep -q -- "-$f" docs/OPERATIONS.md || err "OPERATIONS.md does not document faasrouter -$f"
done
grep -q 'cluster-bench' EXPERIMENTS.md || err "EXPERIMENTS.md does not document cluster-bench"

# --- 4. documented invocations run (smoke mode) -------------------------
smoke() {
    desc=$1; shift
    if ! "$@" >/dev/null 2>&1; then
        err "documented command failed: $desc"
    fi
}
smoke "benchtab faultsweep"   go run ./cmd/benchtab -o /dev/null faultsweep
smoke "benchtab transition"   go run ./cmd/benchtab -o /dev/null transition
smoke "benchtab tier slow"    go run ./cmd/benchtab -tier slow -o /dev/null transition
smoke "benchtab tier fast"    go run ./cmd/benchtab -tier fast -o /dev/null transition
smoke "sfic"                  go run ./cmd/sfic
smoke "faassim (clean)"       go run ./cmd/faassim -handler regex-filtering -procs 2 -seconds 0.2
smoke "faassim (faults)"      go run ./cmd/faassim -handler regex-filtering -procs 2 -seconds 0.2 \
                                  -faultrate 0.05 -retries 4 -timeout 100 -shed 512
smoke "faassim (mte cold)"    go run ./cmd/faassim -handler regex-filtering -procs 2 -seconds 0.2 \
                                  -backend mte -coldstart -faultrate 0.02 -retries 3
smoke "faassim (zerocost)"    go run ./cmd/faassim -handler regex-filtering -procs 2 -seconds 0.2 \
                                  -scheme zerocost
smoke "faassim (phases)"      go run ./cmd/faassim -handler regex-filtering -procs 2 -seconds 0.2 \
                                  -phases
smoke "benchtab -scheme"      go run ./cmd/benchtab -scheme zerocost -o /dev/null transition
smoke "benchtab attribution"  go run ./cmd/benchtab -o /dev/null attribution
smoke "benchtab -harden"      go run ./cmd/benchtab -harden swivel-sfi -o /dev/null transition
smoke "faassim (harden)"      go run ./cmd/faassim -handler regex-filtering -procs 2 -seconds 0.2 \
                                  -harden swivel-sfi
smoke "sfic (harden)"         go run ./cmd/sfic -mode segue -harden swivel-cet
smoke "quickstart example"    go run ./examples/quickstart

# An unknown scheme must be rejected with a usage error, not silently
# accepted as the default.
if go run ./cmd/faassim -scheme warp -seconds 0.1 >/dev/null 2>&1; then
    err "faassim accepted -scheme warp"
fi

# Same for an unknown hardening mode.
if go run ./cmd/faassim -harden retpoline -seconds 0.1 >/dev/null 2>&1; then
    err "faassim accepted -harden retpoline"
fi
if go run ./cmd/benchtab -harden retpoline -o /dev/null transition >/dev/null 2>&1; then
    err "benchtab accepted -harden retpoline"
fi

if [ "$fail" -ne 0 ]; then
    echo "docscheck: FAILED" >&2
    exit 1
fi
echo "docscheck: ok"
