#!/bin/sh
# Benchgate smoke test: exercise tools/benchdiff.sh's gate semantics on
# synthetic BENCH_history.jsonl fixtures without running any benchmark.
# Covers the record-count regression specifically: a two-record history
# whose final line lacks a trailing newline must still diff and gate
# (`wc -l` would count it as one record and silently skip the gate).
# Also proves the gate's verdict logic: a >threshold same-tier slowdown
# fails, an in-threshold one passes, and tier-mismatched records skip.
#
# Run from the repository root: sh tools/benchgatesmoke.sh
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

rec() { # rec TIME TIER WALL -> one history record on stdout
	printf '{"time":"%s","tier":"%s","results":[{"id":"transition","tier":"%s","wall_seconds":%s,"sim_cycles":1000}]}' \
		"$1" "$2" "$2" "$3"
}

fail() {
	echo "benchgatesmoke: $*" >&2
	exit 1
}

# 1. Two records, no trailing newline after the second: must be seen as
# two records (diff succeeds, gate passes on a speedup).
hist="$tmp/no-trailing-newline.jsonl"
{
	rec 2026-01-01T00:00:00Z fused 2.0
	printf '\n'
	rec 2026-01-01T01:00:00Z fused 1.0
} >"$hist"
out=$(sh tools/benchdiff.sh -gate 10 "$hist" 2>&1) ||
	fail "gate failed on a speedup with no trailing newline: $out"
case "$out" in
*"need two to diff"*) fail "two-record history miscounted as one: $out" ;;
*"gate ok"*) ;;
*) fail "expected 'gate ok' verdict, got: $out" ;;
esac

# 2. Same history shape, but the latest record regressed 50% (> 10%):
# the gate must exit nonzero and name the experiment.
hist="$tmp/regression.jsonl"
{
	rec 2026-01-01T00:00:00Z fused 1.0
	printf '\n'
	rec 2026-01-01T01:00:00Z fused 1.5
} >"$hist"
if out=$(sh tools/benchdiff.sh -gate 10 "$hist" 2>&1); then
	fail "gate passed a 50% regression: $out"
fi
case "$out" in
*"GATE: transition regressed"*) ;;
*) fail "regression verdict missing from: $out" ;;
esac

# 3. A regression inside the threshold must pass.
hist="$tmp/in-threshold.jsonl"
{
	rec 2026-01-01T00:00:00Z fused 1.0
	printf '\n'
	rec 2026-01-01T01:00:00Z fused 1.05
} >"$hist"
out=$(sh tools/benchdiff.sh -gate 10 "$hist" 2>&1) ||
	fail "gate failed a 5% regression under a 10% threshold: $out"

# 4. Records from different tiers never gate, even on a huge slowdown.
hist="$tmp/tier-mismatch.jsonl"
{
	rec 2026-01-01T00:00:00Z fast 1.0
	printf '\n'
	rec 2026-01-01T01:00:00Z fused 10.0
} >"$hist"
out=$(sh tools/benchdiff.sh -gate 10 "$hist" 2>&1) ||
	fail "gate failed on a tier mismatch (should skip): $out"
case "$out" in
*"tiers differ"*) ;;
*) fail "expected tier-mismatch skip, got: $out" ;;
esac

# 5. A genuinely single-record history still skips the gate (exit 0).
hist="$tmp/single.jsonl"
rec 2026-01-01T00:00:00Z fused 1.0 >"$hist"
out=$(sh tools/benchdiff.sh -gate 10 "$hist" 2>&1) ||
	fail "gate failed on a single-record history (should skip): $out"
case "$out" in
*"gate skipped"*) ;;
*) fail "expected single-record skip, got: $out" ;;
esac

echo "benchgatesmoke: ok (newline-robust record count, gate verdicts, tier skip)"
