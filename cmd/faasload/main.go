// Command faasload drives a running faasd with open-loop traffic and
// reports what came back: throughput, latency percentiles (p50/p95/p99
// via stats.Percentile), and the shed/error split. Open-loop means
// requests are launched on a fixed schedule regardless of how fast
// responses return, so an overloaded server shows up as sheds and
// rising tail latency instead of a politely slowed client.
//
// Usage:
//
//	faasload -url http://127.0.0.1:8080                 # 200 rps for 2 s
//	faasload -url ... -rps 500 -seconds 5 -kernel regex-filtering
//	faasload -url ... -ramp 100,200,400,800 -json SERVE_results.json
//	faasload -url ... -smoke                            # CI: small burst, any failure is fatal
//	faasload -url ... -shape diurnal -rps 50 -peak 400 -period 8s
//	faasload -url ... -shape bursty -mix "regex-filtering:8,html-templating:2" -alpha 1.2 -nmax 5000
//
// -ramp runs one step per listed rate and emits the per-step trajectory
// (throughput and percentiles per target RPS); -json writes it as JSON
// ("-" = stdout). -smoke sends a small closed-loop burst and exits 1
// unless every request succeeds — the serve smoke test in CI.
//
// -shape switches to trace-driven load: Poisson arrivals whose rate
// follows a diurnal sinusoid or a bursty base/peak schedule
// (internal/cluster), optionally with a weighted kernel mix (-mix) and
// heavy-tailed bounded-Pareto batch sizes (-alpha/-nmax). Everything is
// drawn from -seed, so a trace replays identically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// stepResult is one load step's outcome, JSON-shaped for SERVE_results.
// The wall percentiles measure the serving machinery on this host; the
// sim percentiles measure the emulated execution (what the kernel cost
// on the modeled machine, including its isolation transitions), so a
// cheaper transition scheme shows up in sim_p50 even when wall time is
// noise-bound.
type stepResult struct {
	// Shape and Seed identify a trace-driven step ("diurnal" or
	// "bursty", with the RNG seed that replays it). Absent for
	// fixed-rate and smoke steps.
	Shape string `json:"shape,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`

	TargetRPS     int     `json:"target_rps"`
	Offered       int     `json:"offered"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	SimP50Us      float64 `json:"sim_p50_us"`
	SimP95Us      float64 `json:"sim_p95_us"`
	SimP99Us      float64 `json:"sim_p99_us"`

	// Phases holds per-phase wall-time percentiles, keyed by phase name
	// (queue, exec, transition_in, ...), when the server attributes
	// requests (faasd -spans, the default). Absent otherwise.
	Phases map[string]phasePercentiles `json:"phases,omitempty"`
}

// phasePercentiles is the p50/p95/p99 of one phase's per-request wall
// time, in microseconds.
type phasePercentiles struct {
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
}

func main() {
	url := flag.String("url", "", "base URL of a running faasd (required)")
	kernel := flag.String("kernel", "regex-filtering", "kernel to invoke")
	backend := flag.String("backend", "", "isolation backend to request (empty = server default)")
	scheme := flag.String("scheme", "", "transition scheme to request (empty = server default)")
	batch := flag.Int("n", 0, "batch size per request (0 = server default)")
	rps := flag.Int("rps", 200, "open-loop arrival rate, requests per second")
	seconds := flag.Float64("seconds", 2, "duration of each load step")
	ramp := flag.String("ramp", "", "comma-separated RPS steps overriding -rps (e.g. 100,200,400)")
	jsonOut := flag.String("json", "", `write step results as JSON to this path ("-" = stdout)`)
	smoke := flag.Bool("smoke", false, "closed-loop burst of -count requests; exit 1 on any failure")
	count := flag.Int("count", 20, "requests in a -smoke burst")
	strict := flag.Bool("strict", false, "exit 1 if any request was shed or errored")
	shape := flag.String("shape", "", "trace-driven arrival shape: diurnal or bursty (empty = fixed-rate open loop)")
	peak := flag.Float64("peak", 0, "peak arrival rate for -shape, req/s (0 = 4x -rps)")
	period := flag.Duration("period", 8*time.Second, "full cycle length for -shape diurnal")
	burstLen := flag.Duration("burstlen", 500*time.Millisecond, "burst duration for -shape bursty")
	burstGap := flag.Duration("burstgap", 2*time.Second, "mean gap between burst starts for -shape bursty")
	mixFlag := flag.String("mix", "", `weighted kernel mix "k1:w,k2:w" replacing -kernel for trace-driven load`)
	alpha := flag.Float64("alpha", 0, "bounded-Pareto tail index for per-request batch sizes (0 = fixed -n)")
	nmax := flag.Int("nmax", 0, "largest heavy-tailed batch size (required with -alpha; the floor is -n, default 1)")
	seed := flag.Uint64("seed", 1, "RNG seed for trace-driven arrivals, kernel mix, and batch draws")
	flag.Parse()

	rates, mix, err := validate(*url, *kernel, *batch, *rps, *seconds, *ramp, *count,
		*shape, *peak, *period, *burstLen, *burstGap, *mixFlag, *alpha, *nmax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasload:", err)
		os.Exit(2)
	}

	base := strings.TrimSuffix(*url, "/")
	target := buildTarget(base, *kernel, *backend, *scheme, *batch)
	client := &http.Client{Timeout: 10 * time.Second}

	var steps []stepResult
	switch {
	case *smoke:
		steps = []stepResult{burst(client, target, *count)}
	case *shape != "":
		if *peak == 0 {
			*peak = 4 * float64(*rps)
		}
		tl := traceLoad{
			base: base, kernel: *kernel, backend: *backend, scheme: *scheme,
			batch: *batch, mix: mix, alpha: *alpha, nmax: *nmax, seed: *seed,
		}
		switch *shape {
		case "diurnal":
			tl.shape = cluster.DiurnalShape{Base: float64(*rps),
				Amplitude: *peak - float64(*rps), Period: *period}
		case "bursty":
			tl.shape = cluster.NewBurstyShape(float64(*rps), *peak, *burstLen, *burstGap, *seed)
		}
		steps = []stepResult{tl.run(client, *shape, *seconds)}
	default:
		for _, r := range rates {
			steps = append(steps, openLoop(client, target, r, *seconds))
		}
	}

	failed := false
	for _, st := range steps {
		fmt.Printf("rps=%-5d offered %-5d ok %-5d shed %-4d errors %-4d throughput %.1f rps  p50 %.2fms p95 %.2fms p99 %.2fms  sim p50 %.2fus p95 %.2fus p99 %.2fus\n",
			st.TargetRPS, st.Offered, st.OK, st.Shed, st.Errors,
			st.ThroughputRPS, st.P50Ms, st.P95Ms, st.P99Ms,
			st.SimP50Us, st.SimP95Us, st.SimP99Us)
		if len(st.Phases) > 0 {
			names := make([]string, 0, len(st.Phases))
			for name := range st.Phases {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Printf("          phase p95 (us):")
			for _, name := range names {
				fmt.Printf(" %s %.1f", name, st.Phases[name].P95Us)
			}
			fmt.Println()
		}
		if st.Errors > 0 || st.OK == 0 || ((*smoke || *strict) && st.Shed > 0) {
			failed = true
		}
	}
	if *jsonOut != "" {
		doc := map[string]any{"kernel": *kernel, "steps": steps}
		if *shape != "" {
			doc["shape"] = *shape
		}
		if *mixFlag != "" {
			doc["mix"] = *mixFlag
		}
		data, _ := json.MarshalIndent(doc, "", "  ")
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "faasload:", err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "[wrote %s]\n", *jsonOut)
		}
	}
	if failed && (*smoke || *strict) {
		fmt.Fprintln(os.Stderr, "faasload: run had failures")
		os.Exit(1)
	}
}

// validate rejects out-of-range flags with exit code 2 (usage error).
// It returns the resolved ramp steps and, when -mix is set, the parsed
// kernel mix.
func validate(url, kernel string, batch, rps int, seconds float64, ramp string, count int,
	shape string, peak float64, period, burstLen, burstGap time.Duration,
	mixSpec string, alpha float64, nmax int) ([]int, *cluster.Mix, error) {
	switch {
	case url == "":
		return nil, nil, fmt.Errorf("-url is required (e.g. -url http://127.0.0.1:8080)")
	case kernel == "":
		return nil, nil, fmt.Errorf("-kernel must not be empty")
	case batch < 0:
		return nil, nil, fmt.Errorf("-n %d: must be >= 1 (or 0 for the server default)", batch)
	case rps < 1:
		return nil, nil, fmt.Errorf("-rps %d: must be >= 1", rps)
	case seconds <= 0:
		return nil, nil, fmt.Errorf("-seconds %g: must be positive", seconds)
	case count < 1:
		return nil, nil, fmt.Errorf("-count %d: must be >= 1", count)
	case shape != "" && shape != "diurnal" && shape != "bursty":
		return nil, nil, fmt.Errorf("-shape %q: must be diurnal or bursty (or empty for fixed-rate)", shape)
	case shape != "" && ramp != "":
		return nil, nil, fmt.Errorf("-shape and -ramp are mutually exclusive (-rps is the trace's base rate)")
	case peak < 0:
		return nil, nil, fmt.Errorf("-peak %g: must be >= 0", peak)
	case shape != "" && peak > 0 && peak < float64(rps):
		return nil, nil, fmt.Errorf("-peak %g: must be >= the base rate -rps %d", peak, rps)
	case shape == "diurnal" && period <= 0:
		return nil, nil, fmt.Errorf("-period %v: must be positive", period)
	case shape == "bursty" && burstLen <= 0:
		return nil, nil, fmt.Errorf("-burstlen %v: must be positive", burstLen)
	case shape == "bursty" && burstGap <= 0:
		return nil, nil, fmt.Errorf("-burstgap %v: must be positive", burstGap)
	case alpha < 0:
		return nil, nil, fmt.Errorf("-alpha %g: must be > 0 (or 0 to disable heavy-tailed batches)", alpha)
	case alpha > 0 && nmax < 2:
		return nil, nil, fmt.Errorf("-nmax %d: must be >= 2 with -alpha", nmax)
	case alpha > 0 && batch > 0 && nmax <= batch:
		return nil, nil, fmt.Errorf("-nmax %d: must exceed the batch floor -n %d", nmax, batch)
	}
	var mix *cluster.Mix
	if mixSpec != "" {
		m, err := cluster.ParseMix(mixSpec)
		if err != nil {
			return nil, nil, fmt.Errorf("-mix: %v", err)
		}
		mix = m
	}
	rates := []int{rps}
	if ramp != "" {
		rates = nil
		for _, f := range strings.Split(ramp, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || r < 1 {
				return nil, nil, fmt.Errorf("-ramp %q: each step must be a positive integer", ramp)
			}
			rates = append(rates, r)
		}
	}
	return rates, mix, nil
}

// buildTarget assembles one invoke URL from the flag parts.
func buildTarget(base, kernel, backend, scheme string, batch int) string {
	path := "/invoke/" + kernel
	sep := "?"
	if backend != "" {
		path += sep + "backend=" + backend
		sep = "&"
	}
	if scheme != "" {
		path += sep + "scheme=" + scheme
		sep = "&"
	}
	if batch > 0 {
		path += sep + "n=" + strconv.Itoa(batch)
	}
	return base + path
}

// traceLoad drives one trace-driven step: Poisson arrivals under a
// cluster.Shape, per-request kernel drawn from the mix, per-request
// batch drawn bounded-Pareto. All draws come from seeded RNGs, so the
// offered trace is a pure function of the flags.
type traceLoad struct {
	base, kernel    string
	backend, scheme string
	batch           int
	shape           cluster.Shape
	mix             *cluster.Mix
	alpha           float64
	nmax            int
	seed            uint64
}

func (tl traceLoad) run(client *http.Client, shapeName string, seconds float64) stepResult {
	gen := cluster.NewArrivalGen(tl.shape, tl.seed)
	drawRNG := stats.NewRNG(tl.seed ^ 0x9e3779b97f4a7c15) // decouple draws from arrivals
	dur := time.Duration(seconds * float64(time.Second))
	var (
		c       collector
		wg      sync.WaitGroup
		offered int
	)
	start := time.Now()
	for {
		gen.Next()
		if gen.Elapsed() > dur {
			break
		}
		kernel := tl.kernel
		if tl.mix != nil {
			kernel = tl.mix.Pick(drawRNG)
		}
		batch := tl.batch
		if tl.alpha > 0 {
			floor := uint64(1)
			if tl.batch > 0 {
				floor = uint64(tl.batch)
			}
			batch = int(cluster.BoundedPareto(drawRNG, tl.alpha, floor, uint64(tl.nmax)))
		}
		if d := time.Until(start.Add(gen.Elapsed())); d > 0 {
			time.Sleep(d)
		}
		offered++
		wg.Add(1)
		go fire(client, buildTarget(tl.base, kernel, tl.backend, tl.scheme, batch), &c, &wg)
	}
	wg.Wait()
	st := c.result(0, offered, time.Since(start))
	st.Shape = shapeName
	st.Seed = tl.seed
	return st
}

// collector accumulates per-request outcomes across goroutines.
type collector struct {
	mu               sync.Mutex
	latencies        []float64 // wall ms, successful requests only
	simLatencies     []float64 // simulated µs from the response body
	phases           map[string][]float64
	ok, shed, errors int
}

func (c *collector) record(status int, err error, d time.Duration, simUs float64, phases map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err != nil:
		c.errors++
	case status == http.StatusOK:
		c.ok++
		c.latencies = append(c.latencies, float64(d)/1e6)
		if simUs > 0 {
			c.simLatencies = append(c.simLatencies, simUs)
		}
		if len(phases) > 0 {
			if c.phases == nil {
				c.phases = make(map[string][]float64)
			}
			for name, us := range phases {
				c.phases[name] = append(c.phases[name], us)
			}
		}
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout:
		c.shed++
	default:
		c.errors++
	}
}

func (c *collector) result(targetRPS, offered int, elapsed time.Duration) stepResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := stepResult{
		TargetRPS:     targetRPS,
		Offered:       offered,
		OK:            c.ok,
		Shed:          c.shed,
		Errors:        c.errors,
		ThroughputRPS: float64(c.ok) / elapsed.Seconds(),
		P50Ms:         stats.Percentile(c.latencies, 50),
		P95Ms:         stats.Percentile(c.latencies, 95),
		P99Ms:         stats.Percentile(c.latencies, 99),
		SimP50Us:      stats.Percentile(c.simLatencies, 50),
		SimP95Us:      stats.Percentile(c.simLatencies, 95),
		SimP99Us:      stats.Percentile(c.simLatencies, 99),
	}
	if len(c.phases) > 0 {
		st.Phases = make(map[string]phasePercentiles, len(c.phases))
		for name, samples := range c.phases {
			st.Phases[name] = phasePercentiles{
				P50Us: stats.Percentile(samples, 50),
				P95Us: stats.Percentile(samples, 95),
				P99Us: stats.Percentile(samples, 99),
			}
		}
	}
	return st
}

func fire(client *http.Client, target string, c *collector, wg *sync.WaitGroup) {
	defer wg.Done()
	start := time.Now()
	resp, err := client.Get(target)
	status := 0
	var simUs float64
	var phases map[string]float64
	if err == nil {
		var body struct {
			SimUs   float64            `json:"sim_us"`
			PhaseUs map[string]float64 `json:"phase_us"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
		simUs = body.SimUs
		phases = body.PhaseUs
	}
	c.record(status, err, time.Since(start), simUs, phases)
}

// openLoop launches requests on a fixed schedule for the step duration
// and waits for stragglers before reporting.
func openLoop(client *http.Client, target string, rps int, seconds float64) stepResult {
	interval := time.Duration(float64(time.Second) / float64(rps))
	stop := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var (
		c       collector
		wg      sync.WaitGroup
		offered int
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for now := start; now.Before(stop); now = <-tick.C {
		offered++
		wg.Add(1)
		go fire(client, target, &c, &wg)
	}
	wg.Wait()
	return c.result(rps, offered, time.Since(start))
}

// burst is the closed-loop smoke mode: count requests over a small
// fixed pool of connections, used by CI to prove the serve path works.
func burst(client *http.Client, target string, count int) stepResult {
	var (
		c  collector
		wg sync.WaitGroup
	)
	start := time.Now()
	sem := make(chan struct{}, 4)
	for i := 0; i < count; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			fire(client, target, &c, &wg)
		}()
	}
	wg.Wait()
	return c.result(0, count, time.Since(start))
}
