package main

import (
	"strings"
	"testing"
	"time"
)

// flags mirrors the validated faasload knobs; defaults() matches the
// flag defaults so each case perturbs one knob.
type flags struct {
	url, kernel, ramp  string
	batch, rps, count  int
	seconds            float64
	shape, mix         string
	peak, alpha        float64
	period             time.Duration
	burstLen, burstGap time.Duration
	nmax               int
}

func defaults() flags {
	return flags{
		url: "http://127.0.0.1:8080", kernel: "regex-filtering",
		rps: 200, seconds: 2, count: 20,
		period: 8 * time.Second, burstLen: 500 * time.Millisecond, burstGap: 2 * time.Second,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string // substring of the error, "" = valid
	}{
		{"defaults", func(f *flags) {}, ""},
		{"missing url", func(f *flags) { f.url = "" }, "-url"},
		{"empty kernel", func(f *flags) { f.kernel = "" }, "-kernel"},
		{"negative batch", func(f *flags) { f.batch = -1 }, "-n "},
		{"zero rps", func(f *flags) { f.rps = 0 }, "-rps"},
		{"zero seconds", func(f *flags) { f.seconds = 0 }, "-seconds"},
		{"zero count", func(f *flags) { f.count = 0 }, "-count"},
		{"good ramp", func(f *flags) { f.ramp = "100, 200,400" }, ""},
		{"bad ramp entry", func(f *flags) { f.ramp = "100,zero" }, "-ramp"},
		{"zero ramp step", func(f *flags) { f.ramp = "100,0" }, "-ramp"},
		{"diurnal shape", func(f *flags) { f.shape = "diurnal"; f.peak = 800 }, ""},
		{"bursty shape", func(f *flags) { f.shape = "bursty"; f.peak = 800 }, ""},
		{"unknown shape", func(f *flags) { f.shape = "sawtooth" }, "-shape"},
		{"shape with ramp", func(f *flags) { f.shape = "diurnal"; f.ramp = "100,200" }, "-shape"},
		{"negative peak", func(f *flags) { f.peak = -1 }, "-peak"},
		{"peak below base", func(f *flags) { f.shape = "diurnal"; f.peak = 100 }, "-peak"},
		{"zero period", func(f *flags) { f.shape = "diurnal"; f.period = 0 }, "-period"},
		{"zero burstlen", func(f *flags) { f.shape = "bursty"; f.burstLen = 0 }, "-burstlen"},
		{"zero burstgap", func(f *flags) { f.shape = "bursty"; f.burstGap = 0 }, "-burstgap"},
		{"good mix", func(f *flags) { f.mix = "regex-filtering:8,html-templating:2" }, ""},
		{"bad mix weight", func(f *flags) { f.mix = "a:-1" }, "-mix"},
		{"negative alpha", func(f *flags) { f.alpha = -0.5 }, "-alpha"},
		{"alpha without nmax", func(f *flags) { f.alpha = 1.2 }, "-nmax"},
		{"alpha with nmax", func(f *flags) { f.alpha = 1.2; f.nmax = 5000 }, ""},
		{"nmax below batch", func(f *flags) { f.alpha = 1.2; f.batch = 100; f.nmax = 50 }, "-nmax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := defaults()
			c.mutate(&f)
			rates, mix, err := validate(f.url, f.kernel, f.batch, f.rps, f.seconds, f.ramp, f.count,
				f.shape, f.peak, f.period, f.burstLen, f.burstGap, f.mix, f.alpha, f.nmax)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate rejected valid flags: %v", err)
				}
				if len(rates) == 0 {
					t.Fatalf("no ramp steps resolved")
				}
				if f.mix != "" && mix == nil {
					t.Fatalf("mix flag set but no mix parsed")
				}
				return
			}
			if err == nil {
				t.Fatalf("validate accepted bad flags, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}

// TestRampResolution: -ramp overrides -rps and preserves order.
func TestRampResolution(t *testing.T) {
	f := defaults()
	rates, _, err := validate(f.url, f.kernel, 0, f.rps, f.seconds, "100,200,400", f.count,
		"", 0, f.period, f.burstLen, f.burstGap, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 || rates[0] != 100 || rates[2] != 400 {
		t.Fatalf("rates = %v", rates)
	}
}
