// Command sfic compiles a module under the different SFI schemes and
// prints the listings side by side — the Figure 1 comparison, on demand.
//
// Usage:
//
//	sfic [-kernel name] [-mode native|guard|segue|boundscheck|lfi] [-all]
//
// Without flags it shows the paper's two Figure 1 patterns under
// native, classic-SFI, and Segue compilation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

var modeByName = map[string]sfi.Mode{
	"native":      sfi.ModeNative,
	"guard":       sfi.ModeGuard,
	"segue":       sfi.ModeSegue,
	"boundscheck": sfi.ModeBoundsCheck,
	"boundssegue": sfi.ModeBoundsSegue,
	"lfi":         sfi.ModeLFI,
	"lfisegue":    sfi.ModeLFISegue,
}

func main() {
	kernel := flag.String("kernel", "", "compile a benchmark kernel (e.g. sieve, 429_mcf) instead of the Figure 1 demo")
	modeName := flag.String("mode", "", "single mode to print (default: native, guard, segue side by side)")
	hardenFlag := flag.String("harden", "none", "Spectre hardening in the listing (none, swivel-sfi, swivel-cet, deterministic)")
	tele := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()
	harden, err := sfi.ParseHarden(*hardenFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfic: -harden %s: %v\n", *hardenFlag, err)
		os.Exit(2)
	}
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "sfic:", err)
		os.Exit(1)
	}

	var m *ir.Module
	if *kernel != "" {
		k, err := findKernel(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		m = k.Build(false)
	} else {
		m = fig1Module()
	}

	modes := []sfi.Mode{sfi.ModeNative, sfi.ModeGuard, sfi.ModeSegue}
	if *modeName != "" {
		md, ok := modeByName[*modeName]
		if !ok {
			fmt.Fprintf(os.Stderr, "sfic: unknown mode %q\n", *modeName)
			os.Exit(2)
		}
		modes = []sfi.Mode{md}
	}

	for _, mode := range modes {
		cfg := sfi.DefaultConfig(mode)
		cfg.Harden = harden
		prog, _, err := sfi.Compile(m, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfic: %v\n", err)
			os.Exit(1)
		}
		title := mode.String()
		if harden != sfi.HardenNone {
			title += "+" + harden.String()
		}
		fmt.Printf("---- %s (total %d bytes) ----\n", title, prog.CodeBytes())
		for _, f := range prog.Funcs {
			fmt.Print(sfi.Disassemble(f))
		}
		fmt.Println()
	}
	if err := tele.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "sfic:", err)
		os.Exit(1)
	}
}

func findKernel(name string) (workloads.Kernel, error) {
	for _, s := range []workloads.Suite{
		workloads.Sightglass(), workloads.Spec2006(), workloads.Spec2017(),
		workloads.Polybench(), workloads.Firefox(), workloads.FaaS(),
	} {
		if k, err := s.Find(name); err == nil {
			return k, nil
		}
	}
	return workloads.Kernel{}, fmt.Errorf("sfic: no kernel %q in any suite", name)
}

// fig1Module builds the paper's Figure 1 patterns.
func fig1Module() *ir.Module {
	m := ir.NewModule("fig1", 1, 1)
	p1 := m.NewFunc("pattern1_int_to_ptr", ir.Sig([]ir.ValType{ir.I64}, []ir.ValType{ir.I64}))
	p1.Get(0).I32WrapI64().I64Load(0)
	p1.MustBuild()
	p2 := m.NewFunc("pattern2_struct_arr", ir.Sig([]ir.ValType{ir.I32, ir.I32}, []ir.ValType{ir.I32}))
	p2.Get(1).I32(2).I32Shl().Get(0).I32Add()
	p2.I32Load(8)
	p2.MustBuild()
	m.MustExport("pattern1_int_to_ptr")
	m.MustExport("pattern2_struct_arr")
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}
