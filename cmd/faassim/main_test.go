package main

import (
	"strings"
	"testing"
)

// defaults mirrors the flag defaults so each case perturbs one knob.
type flags struct {
	backend            string
	faultRate, seconds float64
	computeNs, timeout float64
	retries, arrivals  int
	procs, pages, shed int
	instanceKB         uint64
}

func defaults() flags {
	return flags{
		faultRate: 0, seconds: 2, computeNs: 0, timeout: 0,
		retries: 1, arrivals: 40, procs: 0, pages: 48, shed: 0,
		instanceKB: 64,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string // substring of the error, "" = valid
	}{
		{"defaults", func(f *flags) {}, ""},
		{"known backend", func(f *flags) { f.backend = "mte" }, ""},
		{"unknown backend", func(f *flags) { f.backend = "sgx" }, "unknown backend"},
		{"negative faultrate", func(f *flags) { f.faultRate = -3 }, "-faultrate"},
		{"faultrate above one", func(f *flags) { f.faultRate = 2 }, "-faultrate"},
		{"faultrate boundary", func(f *flags) { f.faultRate = 1 }, ""},
		{"zero retries", func(f *flags) { f.retries = 0 }, "-retries"},
		{"negative retries", func(f *flags) { f.retries = -1 }, "-retries"},
		{"zero seconds", func(f *flags) { f.seconds = 0 }, "-seconds"},
		{"negative seconds", func(f *flags) { f.seconds = -0.5 }, "-seconds"},
		{"negative arrivals", func(f *flags) { f.arrivals = -1 }, "-arrivals"},
		{"zero arrivals", func(f *flags) { f.arrivals = 0 }, "-arrivals"},
		{"negative procs", func(f *flags) { f.procs = -2 }, "-procs"},
		{"explicit procs", func(f *flags) { f.procs = 8 }, ""},
		{"zero pages", func(f *flags) { f.pages = 0 }, "-pages"},
		{"negative compute", func(f *flags) { f.computeNs = -100 }, "-compute"},
		{"negative timeout", func(f *flags) { f.timeout = -5 }, "-timeout"},
		{"negative shed", func(f *flags) { f.shed = -1 }, "-shed"},
		{"zero instancekb", func(f *flags) { f.instanceKB = 0 }, "-instancekb"},
		{"armed fault run", func(f *flags) {
			f.faultRate = 0.05
			f.retries = 4
			f.timeout = 100
			f.shed = 512
		}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := defaults()
			c.mutate(&f)
			err := validate(f.backend, f.faultRate, f.seconds, f.computeNs, f.timeout,
				f.retries, f.arrivals, f.procs, f.pages, f.shed, f.instanceKB)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate rejected valid flags: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate accepted bad flags, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}
