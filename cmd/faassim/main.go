// Command faassim runs the §6.4.3 FaaS scaling simulation with
// adjustable parameters: ColorGuard single-process versus N-process
// scaling on a single core.
//
// Usage:
//
//	faassim                          # sweep 1..15 processes, all handlers
//	faassim -procs 8 -handler regex-filtering
//	faassim -compute 50000 -pages 64 -arrivals 60
//	faassim -backend mte -coldstart  # §7: per-request lifecycle costs
//	faassim -scheme zerocost         # near-zero-cost transitions
//	faassim -faultrate 0.05 -retries 4 -timeout 100 -shed 512
//
// The last form arms deterministic fault injection (internal/fault):
// the base rate is scaled into each backend's characteristic fault mix,
// and the degradation policies — retry with backoff, a per-request
// deadline, bounded-queue admission control, and a circuit breaker —
// govern how the platform sheds the damage. Armed runs print fail%
// columns (shed + failed + timed-out as a share of offered load).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/sfi"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	handler := flag.String("handler", "", "handler kernel (default: all three)")
	procs := flag.Int("procs", 0, "multiprocess process count (default: sweep 1..15)")
	computeNs := flag.Float64("compute", 0, "override per-request compute ns (default: measure the kernel)")
	pages := flag.Int("pages", 48, "instance pages touched per request")
	arrivals := flag.Int("arrivals", 40, "request arrivals per 1 ms epoch")
	duration := flag.Float64("seconds", 2, "simulated seconds")
	backend := flag.String("backend", "", "isolation backend replacing the default colorguard side (guardpage, colorguard, mte, multiproc)")
	scheme := flag.String("scheme", "", "transition scheme for both sides (default, zerocost, onestack, trampoline)")
	hardenFlag := flag.String("harden", "none", "Spectre hardening for the measured kernels (none, swivel-sfi, swivel-cet, deterministic)")
	coldStart := flag.Bool("coldstart", false, "fresh instance per request: charge the backend's init/teardown costs (§7)")
	instanceKB := flag.Uint64("instancekb", 64, "linear-memory KiB the cold-start lifecycle costs are charged on")
	preserveTags := flag.Bool("preservetags", false, "model the tag-preserving madvise (mte backend only)")
	latency := flag.Bool("latency", false, "record per-request latency and print p50/p95/p99 columns")
	phases := flag.Bool("phases", false, "attribute virtual time to request phases and print the mean per-phase breakdown per row")
	faultRate := flag.Float64("faultrate", 0, "base per-request fault rate, scaled into each backend's fault mix (0 = no injection)")
	faultSeed := flag.Uint64("faultseed", 1789, "fault-injector RNG seed (independent of the simulation seed)")
	timeoutMs := flag.Float64("timeout", 0, "per-request deadline in virtual ms (0 = none)")
	retries := flag.Int("retries", 1, "attempt budget per request under faults (1 = no retries)")
	shed := flag.Int("shed", 0, "admission queue limit; arrivals beyond it are shed (0 = unbounded)")
	tele := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := validate(*backend, *faultRate, *duration, *computeNs, *timeoutMs,
		*retries, *arrivals, *procs, *pages, *shed, *instanceKB); err != nil {
		fmt.Fprintln(os.Stderr, "faassim:", err)
		os.Exit(2)
	}
	if err := tele.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "faassim:", err)
		os.Exit(1)
	}

	kind := isolation.ColorGuard
	if *backend != "" {
		kind = isolation.Kind(*backend)
	}
	sch, err := isolation.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faassim: -scheme %s: %v\n", *scheme, err)
		os.Exit(2)
	}
	harden, err := sfi.ParseHarden(*hardenFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faassim: -harden %s: %v\n", *hardenFlag, err)
		os.Exit(2)
	}
	sfi.SetDefaultHarden(harden)

	// Any armed knob turns the fault machinery on for both sides of the
	// comparison; faultConfig scales the base rate into each backend's
	// characteristic mix.
	faultsOn := *faultRate > 0 || *timeoutMs > 0 || *retries > 1 || *shed > 0
	faultConfig := func(kind isolation.Kind) fault.Config {
		if !faultsOn {
			return fault.Config{}
		}
		return fault.Config{
			Seed:        *faultSeed,
			Rates:       fault.RatesFor(string(kind), *faultRate),
			MaxAttempts: *retries,
			Retry:       fault.Backoff{BaseNs: 200_000, Factor: 2, MaxNs: 8e6},
			TimeoutNs:   *timeoutMs * 1e6,
			QueueLimit:  *shed,
			Breaker:     fault.BreakerConfig{FailureThreshold: 64, OpenNs: 5e6},
		}
	}
	failPct := func(r faas.Result) float64 {
		return 100 * float64(r.Shed+r.Failed+r.TimedOut) / float64(r.Offered)
	}

	names := []string{"html-templating", "hash-load-balance", "regex-filtering"}
	if *handler != "" {
		names = []string{*handler}
	}
	for _, name := range names {
		w, err := buildWorkload(name, *computeNs, *pages)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faassim:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s: compute %.1f µs/request, %d pages ==\n", w.Name, w.ComputeNs/1e3, w.Pages)
		fmt.Printf("%-6s  %-12s  %-12s  %-8s  %-14s  %-12s",
			"procs", "mp rps", shortName(kind)+" rps", "gain", "mp switches", "mp dtlb")
		if faultsOn {
			fmt.Printf("  %-9s  %-9s", shortName(kind)+" fail%", "mp fail%")
		}
		if *latency {
			fmt.Printf("  %-10s  %-10s  %-10s", "cg p50 ms", "cg p95 ms", "cg p99 ms")
		}
		fmt.Println()
		ns := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
		if *procs > 0 {
			ns = []int{*procs}
		}
		for _, n := range ns {
			cgCfg := faas.SchemeConfig(w, kind, sch, 1)
			mpCfg := faas.SchemeConfig(w, isolation.MultiProc, sch, n)
			if kind == isolation.MTE {
				cgCfg.Lifecycle = isolation.LifecycleFor(kind, *preserveTags)
			}
			cgCfg.Faults = faultConfig(kind)
			mpCfg.Faults = faultConfig(isolation.MultiProc)
			for _, cfg := range []*faas.Config{&cgCfg, &mpCfg} {
				cfg.ArrivalsPerEpoch = *arrivals
				cfg.DurationNs = *duration * 1e9
				cfg.ColdStart = *coldStart
				cfg.InstanceBytes = *instanceKB << 10
				cfg.RecordLatency = *latency
				cfg.RecordPhases = *phases
			}
			cg := faas.Run(cgCfg)
			mp := faas.Run(mpCfg)
			gain := (cg.ThroughputRPS/mp.ThroughputRPS - 1) * 100
			fmt.Printf("%-6d  %-12.0f  %-12.0f  %+.1f%%   %-14d  %-12d",
				n, mp.ThroughputRPS, cg.ThroughputRPS, gain, mp.CtxSwitches, mp.DTLBMisses)
			if faultsOn {
				fmt.Printf("  %-9.2f  %-9.2f", failPct(cg), failPct(mp))
			}
			if *latency {
				fmt.Printf("  %-10.2f  %-10.2f  %-10.2f",
					cg.LatencyP50Ns/1e6, cg.LatencyP95Ns/1e6, cg.LatencyP99Ns/1e6)
			}
			fmt.Println()
			if *phases {
				printPhases(shortName(kind), cg)
				printPhases("mp", mp)
			}
		}
		fmt.Println()
	}
	if err := tele.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "faassim:", err)
		os.Exit(1)
	}
}

// validate rejects out-of-range flag values before any simulation work
// starts, exiting with the conventional usage-error code 2. Zero keeps
// a knob's "off"/"default" meaning where one exists; everything else
// must land in the knob's meaningful range.
func validate(backend string, faultRate, seconds, computeNs, timeoutMs float64,
	retries, arrivals, procs, pages, shed int, instanceKB uint64) error {
	if backend != "" {
		found := false
		for _, k := range isolation.Kinds() {
			if k == isolation.Kind(backend) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown backend %q (want one of %v)", backend, isolation.Kinds())
		}
	}
	switch {
	case faultRate < 0 || faultRate > 1:
		return fmt.Errorf("-faultrate %g: a probability must be in [0, 1]", faultRate)
	case retries < 1:
		return fmt.Errorf("-retries %d: the attempt budget must be >= 1 (1 = no retries)", retries)
	case seconds <= 0:
		return fmt.Errorf("-seconds %g: simulated duration must be positive", seconds)
	case arrivals < 1:
		return fmt.Errorf("-arrivals %d: must be >= 1 request per epoch", arrivals)
	case procs < 0:
		return fmt.Errorf("-procs %d: must be >= 1 (or 0 to sweep 1..15)", procs)
	case pages < 1:
		return fmt.Errorf("-pages %d: an instance touches at least one page", pages)
	case computeNs < 0:
		return fmt.Errorf("-compute %g: must be >= 0 (0 = measure the kernel)", computeNs)
	case timeoutMs < 0:
		return fmt.Errorf("-timeout %g: must be >= 0 (0 = no deadline)", timeoutMs)
	case shed < 0:
		return fmt.Errorf("-shed %d: must be >= 0 (0 = unbounded queue)", shed)
	case instanceKB < 1:
		return fmt.Errorf("-instancekb %d: the lifecycle charge needs at least 1 KiB", instanceKB)
	}
	return nil
}

// printPhases prints one side's mean virtual-time phase breakdown per
// completed request (-phases).
func printPhases(label string, r faas.Result) {
	if r.Completed == 0 {
		return
	}
	n := float64(r.Completed)
	fmt.Printf("        %s phases (µs/req):", label)
	names := telemetry.PhaseNames()
	for p, total := range r.PhaseTotalsNs {
		if total > 0 {
			fmt.Printf(" %s %.2f", names[p], total/n/1e3)
		}
	}
	fmt.Println()
}

// shortName abbreviates a backend kind for the table header.
func shortName(kind isolation.Kind) string {
	switch kind {
	case isolation.ColorGuard:
		return "cg"
	case isolation.GuardPage:
		return "gp"
	case isolation.MultiProc:
		return "mp"
	}
	return string(kind)
}

func buildWorkload(name string, computeNs float64, pages int) (faas.Workload, error) {
	if computeNs > 0 {
		return faas.Workload{Name: name, ComputeNs: computeNs, Pages: pages}, nil
	}
	batches := map[string]uint64{
		"html-templating":   10,
		"hash-load-balance": 256,
		"regex-filtering":   280,
	}
	batch, ok := batches[name]
	if !ok {
		return faas.Workload{}, fmt.Errorf("unknown handler %q", name)
	}
	k, err := workloads.FaaS().Find(name)
	if err != nil {
		return faas.Workload{}, err
	}
	m, err := exp.MeasureKernel(k, sfi.DefaultConfig(sfi.ModeSegue), []uint64{batch})
	if err != nil {
		return faas.Workload{}, err
	}
	return faas.Workload{Name: name, ComputeNs: m.Nanos, Pages: pages}, nil
}
