// Command faassim runs the §6.4.3 FaaS scaling simulation with
// adjustable parameters: ColorGuard single-process versus N-process
// scaling on a single core.
//
// Usage:
//
//	faassim                          # sweep 1..15 processes, all handlers
//	faassim -procs 8 -handler regex-filtering
//	faassim -compute 50000 -pages 64 -arrivals 60
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/faas"
	"repro/internal/sfi"
	"repro/internal/workloads"
)

func main() {
	handler := flag.String("handler", "", "handler kernel (default: all three)")
	procs := flag.Int("procs", 0, "multiprocess process count (default: sweep 1..15)")
	computeNs := flag.Float64("compute", 0, "override per-request compute ns (default: measure the kernel)")
	pages := flag.Int("pages", 48, "instance pages touched per request")
	arrivals := flag.Int("arrivals", 40, "request arrivals per 1 ms epoch")
	duration := flag.Float64("seconds", 2, "simulated seconds")
	flag.Parse()

	names := []string{"html-templating", "hash-load-balance", "regex-filtering"}
	if *handler != "" {
		names = []string{*handler}
	}
	for _, name := range names {
		w, err := buildWorkload(name, *computeNs, *pages)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faassim:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s: compute %.1f µs/request, %d pages ==\n", w.Name, w.ComputeNs/1e3, w.Pages)
		fmt.Printf("%-6s  %-12s  %-12s  %-8s  %-14s  %-12s\n",
			"procs", "mp rps", "cg rps", "gain", "mp switches", "mp dtlb")
		ns := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
		if *procs > 0 {
			ns = []int{*procs}
		}
		for _, n := range ns {
			cgCfg := faas.DefaultConfig(w, 1, true)
			mpCfg := faas.DefaultConfig(w, n, false)
			cgCfg.ArrivalsPerEpoch = *arrivals
			mpCfg.ArrivalsPerEpoch = *arrivals
			cgCfg.DurationNs = *duration * 1e9
			mpCfg.DurationNs = *duration * 1e9
			cg := faas.Run(cgCfg)
			mp := faas.Run(mpCfg)
			gain := (cg.ThroughputRPS/mp.ThroughputRPS - 1) * 100
			fmt.Printf("%-6d  %-12.0f  %-12.0f  %+.1f%%   %-14d  %-12d\n",
				n, mp.ThroughputRPS, cg.ThroughputRPS, gain, mp.CtxSwitches, mp.DTLBMisses)
		}
		fmt.Println()
	}
}

func buildWorkload(name string, computeNs float64, pages int) (faas.Workload, error) {
	if computeNs > 0 {
		return faas.Workload{Name: name, ComputeNs: computeNs, Pages: pages}, nil
	}
	batches := map[string]uint64{
		"html-templating":   10,
		"hash-load-balance": 256,
		"regex-filtering":   280,
	}
	batch, ok := batches[name]
	if !ok {
		return faas.Workload{}, fmt.Errorf("unknown handler %q", name)
	}
	k, err := workloads.FaaS().Find(name)
	if err != nil {
		return faas.Workload{}, err
	}
	m, err := exp.MeasureKernel(k, sfi.DefaultConfig(sfi.ModeSegue), []uint64{batch})
	if err != nil {
		return faas.Workload{}, err
	}
	return faas.Workload{Name: name, ComputeNs: m.Nanos, Pages: pages}, nil
}
