// Command faasrouter fronts a cluster of faasd worker processes: it
// consistent-hashes /invoke requests across the workers on the
// (kernel, backend, scheme) affinity key — the same key the workers'
// keep-warm pools pin instances under — and runs the telemetry-driven
// autoscaler that grows and shrinks each worker's per-backend pools.
//
// Two ways to get workers:
//
//	faasrouter -faasd ./faasd -n 3             # spawn and supervise 3 workers
//	faasrouter -attach http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Spawned workers use ephemeral ports (-addr 127.0.0.1:0 -addrfile),
// are restarted when they die, and are routed around while down.
//
// Usage:
//
//	faasrouter -faasd ./faasd -n 3                        # cluster on :8090
//	faasrouter -faasd ./faasd -n 3 -workerargs "-slots 8"
//	faasrouter -attach http://127.0.0.1:8081 -autoscale=false
//	faasrouter -faasd ./faasd -n 2 -scaleinterval 500ms -maxwarm 6
//
// Endpoints:
//
//	POST/GET /invoke/<kernel>?n=&backend=&scheme=   proxied to a worker
//	GET      /healthz    router + per-worker health
//	GET      /metrics    cluster.router.* / cluster.autoscale.* snapshot
//	GET      /workers    registered worker names and URLs
//
// SIGINT/SIGTERM drains: the autoscaler stops, spawned workers get
// SIGTERM (each drains its own in-flight work), then the router exits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address (use port 0 with -addrfile for an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening")
	faasd := flag.String("faasd", "", "path to a faasd binary; spawn and supervise -n workers")
	n := flag.Int("n", 2, "worker processes to spawn with -faasd")
	workerArgs := flag.String("workerargs", "", "extra args passed to each spawned faasd (space-separated)")
	attach := flag.String("attach", "", "comma-separated base URLs of already-running workers (alternative to -faasd)")
	dir := flag.String("dir", "", "directory for spawned workers' address files and logs (default: temp dir)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per worker on the hash ring (default 64)")
	spread := flag.Int("spread", 0, "ring candidates per key: 1 = strict affinity, larger = bounded-load spread (default 2)")
	loadFactor := flag.Float64("loadfactor", 0, "bounded-load constant c; a worker above c*mean in-flight diverts (default 1.25)")
	autoscale := flag.Bool("autoscale", true, "run the telemetry-driven keep-warm autoscaler")
	scaleInterval := flag.Duration("scaleinterval", time.Second, "autoscaler scrape/decide interval")
	growMisses := flag.Int("growmisses", 0, "cold-start delta per tick that grows a backend's pool (default 3)")
	idleTicks := flag.Int("idleticks", 0, "consecutive idle ticks before a pool shrinks (default 3)")
	cooldownTicks := flag.Int("cooldownticks", 0, "ticks a (worker, backend) holds after any decision (default 2)")
	maxWarm := flag.Int("maxwarm", 0, "largest keep-warm target the autoscaler will set (default 8)")
	drainTimeout := flag.Duration("draintimeout", 15*time.Second, "how long shutdown waits for workers to drain")
	flag.Parse()

	if err := validate(*faasd, *attach, *n, *vnodes, *spread, *loadFactor, *scaleInterval,
		*growMisses, *idleTicks, *cooldownTicks, *maxWarm, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "faasrouter:", err)
		os.Exit(2)
	}

	telemetry.SetEnabled(true)
	router := cluster.NewRouter(cluster.RouterConfig{
		Vnodes:     *vnodes,
		Spread:     *spread,
		LoadFactor: *loadFactor,
	})

	var sup *cluster.Supervisor
	if *faasd != "" {
		var args []string
		if *workerArgs != "" {
			args = strings.Fields(*workerArgs)
		}
		var err error
		sup, err = cluster.NewSupervisor(cluster.SupervisorConfig{
			Command: *faasd,
			Args:    args,
			Workers: *n,
			Dir:     *dir,
			OnUp: func(name, baseURL string) {
				router.AddWorker(name, baseURL)
				fmt.Fprintf(os.Stderr, "[faasrouter %s up at %s]\n", name, baseURL)
			},
			OnDown: func(name string) {
				router.SetHealthy(name, false)
				fmt.Fprintf(os.Stderr, "[faasrouter %s down]\n", name)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "faasrouter:", err)
			os.Exit(1)
		}
		if err := sup.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "faasrouter:", err)
			os.Exit(1)
		}
	} else {
		for i, u := range strings.Split(*attach, ",") {
			router.AddWorker(fmt.Sprintf("worker-%d", i), strings.TrimSpace(u))
		}
	}

	var scaler *cluster.Autoscaler
	if *autoscale {
		scaler = cluster.NewAutoscaler(router, cluster.AutoscalerConfig{
			Interval: *scaleInterval,
			Policy: cluster.PolicyConfig{
				GrowMissDelta:   uint64(*growMisses),
				ShrinkIdleTicks: *idleTicks,
				CooldownTicks:   *cooldownTicks,
				MaxTarget:       *maxWarm,
			},
		})
		scaler.Start()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasrouter:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "faasrouter:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "[faasrouter listening on %s, %d workers]\n", ln.Addr(), len(router.Workers()))

	httpSrv := &http.Server{Handler: router.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "[faasrouter %s: draining]\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "faasrouter:", err)
		os.Exit(1)
	}

	if scaler != nil {
		scaler.Stop()
	}
	_ = httpSrv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "faasrouter:", err)
	}
	if sup != nil {
		done := make(chan struct{})
		go func() { sup.Stop(); close(done) }()
		select {
		case <-done:
		case <-time.After(*drainTimeout):
			fmt.Fprintln(os.Stderr, "[faasrouter: worker drain timed out]")
		}
	}
	snap := telemetry.Default.Snapshot()
	fmt.Fprintf(os.Stderr, "[faasrouter drained: %d requests, %d proxied, %d failovers, %d grows, %d shrinks]\n",
		snap.Counters["cluster.router.requests"], snap.Counters["cluster.router.proxied"],
		snap.Counters["cluster.router.failovers"], snap.Counters["cluster.autoscale.grow"],
		snap.Counters["cluster.autoscale.shrink"])
}

// validate rejects nonsensical knob settings with exit code 2 (usage
// error), mirroring faasd and faassim: zero means "use the default"
// for sizing knobs, so only negatives (and impossible combinations)
// are errors.
func validate(faasd, attach string, n, vnodes, spread int, loadFactor float64,
	scaleInterval time.Duration, growMisses, idleTicks, cooldownTicks, maxWarm int,
	drainTimeout time.Duration) error {
	switch {
	case faasd == "" && attach == "":
		return fmt.Errorf("one of -faasd (spawn workers) or -attach (join running workers) is required")
	case faasd != "" && attach != "":
		return fmt.Errorf("-faasd and -attach are mutually exclusive")
	case faasd != "" && n < 1:
		return fmt.Errorf("-n %d: must be >= 1", n)
	case vnodes < 0:
		return fmt.Errorf("-vnodes %d: must be >= 1 (or 0 for the default)", vnodes)
	case spread < 0:
		return fmt.Errorf("-spread %d: must be >= 1 (or 0 for the default)", spread)
	case loadFactor < 0:
		return fmt.Errorf("-loadfactor %g: must be > 1 (or 0 for the default)", loadFactor)
	case loadFactor > 0 && loadFactor <= 1:
		return fmt.Errorf("-loadfactor %g: must be > 1 (a worker may always take its fair share)", loadFactor)
	case scaleInterval <= 0:
		return fmt.Errorf("-scaleinterval %v: must be positive", scaleInterval)
	case growMisses < 0:
		return fmt.Errorf("-growmisses %d: must be >= 1 (or 0 for the default)", growMisses)
	case idleTicks < 0:
		return fmt.Errorf("-idleticks %d: must be >= 1 (or 0 for the default)", idleTicks)
	case cooldownTicks < 0:
		return fmt.Errorf("-cooldownticks %d: must be >= 1 (or 0 for the default)", cooldownTicks)
	case maxWarm < 0:
		return fmt.Errorf("-maxwarm %d: must be >= 1 (or 0 for the default)", maxWarm)
	case drainTimeout <= 0:
		return fmt.Errorf("-draintimeout %v: must be positive", drainTimeout)
	}
	return nil
}
