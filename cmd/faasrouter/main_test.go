package main

import (
	"strings"
	"testing"
	"time"
)

// flags mirrors the validated faasrouter knobs; defaults() matches the
// flag defaults (spawn mode) so each case perturbs one knob.
type flags struct {
	faasd, attach       string
	n, vnodes, spread   int
	loadFactor          float64
	scaleInterval       time.Duration
	growMisses          int
	idleTicks, cooldown int
	maxWarm             int
	drainTimeout        time.Duration
}

func defaults() flags {
	return flags{
		faasd: "./faasd", n: 2,
		scaleInterval: time.Second,
		drainTimeout:  15 * time.Second,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string // substring of the error, "" = valid
	}{
		{"spawn defaults", func(f *flags) {}, ""},
		{"attach mode", func(f *flags) { f.faasd = ""; f.attach = "http://127.0.0.1:8081" }, ""},
		{"neither mode", func(f *flags) { f.faasd = "" }, "-faasd"},
		{"both modes", func(f *flags) { f.attach = "http://x" }, "mutually exclusive"},
		{"zero workers", func(f *flags) { f.n = 0 }, "-n "},
		{"negative vnodes", func(f *flags) { f.vnodes = -1 }, "-vnodes"},
		{"explicit vnodes", func(f *flags) { f.vnodes = 128 }, ""},
		{"negative spread", func(f *flags) { f.spread = -1 }, "-spread"},
		{"strict affinity", func(f *flags) { f.spread = 1 }, ""},
		{"negative loadfactor", func(f *flags) { f.loadFactor = -2 }, "-loadfactor"},
		{"loadfactor at one", func(f *flags) { f.loadFactor = 1 }, "-loadfactor"},
		{"good loadfactor", func(f *flags) { f.loadFactor = 1.5 }, ""},
		{"zero scaleinterval", func(f *flags) { f.scaleInterval = 0 }, "-scaleinterval"},
		{"negative growmisses", func(f *flags) { f.growMisses = -1 }, "-growmisses"},
		{"negative idleticks", func(f *flags) { f.idleTicks = -1 }, "-idleticks"},
		{"negative cooldown", func(f *flags) { f.cooldown = -1 }, "-cooldownticks"},
		{"negative maxwarm", func(f *flags) { f.maxWarm = -1 }, "-maxwarm"},
		{"zero draintimeout", func(f *flags) { f.drainTimeout = 0 }, "-draintimeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := defaults()
			c.mutate(&f)
			err := validate(f.faasd, f.attach, f.n, f.vnodes, f.spread, f.loadFactor,
				f.scaleInterval, f.growMisses, f.idleTicks, f.cooldown, f.maxWarm, f.drainTimeout)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate rejected valid flags: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate accepted bad flags, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}
