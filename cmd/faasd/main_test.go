package main

import (
	"strings"
	"testing"
	"time"
)

// flags mirrors the validated faasd knobs; defaults() matches the flag
// defaults so each case perturbs one knob.
type flags struct {
	shards, workers, queue   int
	maxInFlight, slots, warm int
	timeout                  time.Duration
	breakerFails             int
	breakerOpen, drainExpiry time.Duration
}

func defaults() flags {
	return flags{
		breakerFails: 32,
		breakerOpen:  2 * time.Second,
		drainExpiry:  10 * time.Second,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string // substring of the error, "" = valid
	}{
		{"defaults", func(f *flags) {}, ""},
		{"explicit sizing", func(f *flags) { f.shards = 4; f.workers = 2; f.queue = 128; f.slots = 8 }, ""},
		{"negative shards", func(f *flags) { f.shards = -1 }, "-shards"},
		{"negative workers", func(f *flags) { f.workers = -2 }, "-workers"},
		{"negative queue", func(f *flags) { f.queue = -1 }, "-queue"},
		{"negative maxinflight", func(f *flags) { f.maxInFlight = -5 }, "-maxinflight"},
		{"negative slots", func(f *flags) { f.slots = -1 }, "-slots"},
		{"warm disabled", func(f *flags) { f.warm = -1 }, ""},
		{"warm below disable", func(f *flags) { f.warm = -2 }, "-warm"},
		{"negative timeout", func(f *flags) { f.timeout = -time.Second }, "-timeout"},
		{"zero timeout ok", func(f *flags) { f.timeout = 0 }, ""},
		{"zero breakerfails", func(f *flags) { f.breakerFails = 0 }, "-breakerfails"},
		{"zero breakeropen", func(f *flags) { f.breakerOpen = 0 }, "-breakeropen"},
		{"zero draintimeout", func(f *flags) { f.drainExpiry = 0 }, "-draintimeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := defaults()
			c.mutate(&f)
			err := validate(f.shards, f.workers, f.queue, f.maxInFlight, f.slots, f.warm,
				f.timeout, f.breakerFails, f.breakerOpen, f.drainExpiry)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate rejected valid flags: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate accepted bad flags, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}
