// Command faasd serves the measured workload kernels over HTTP: each
// request compiles nothing (modules are cached process-wide), places a
// fresh instance into an isolation-backend slot owned by the worker
// that dequeued it, invokes the kernel, and returns the checksum plus
// simulated and wall-clock timings as JSON.
//
// Usage:
//
//	faasd                              # all kernels on 127.0.0.1:8080
//	faasd -addr 127.0.0.1:0 -addrfile /tmp/faasd.addr
//	faasd -shards 4 -workers 2 -queue 128 -timeout 250ms
//	faasd -backend multiproc -kernels regex-filtering
//	faasd -scheme zerocost             # default transition scheme
//	faasd -spans=false                 # disable per-request phase spans
//	faasd -trace /tmp/serve.json       # Chrome trace written on drain
//
// Endpoints:
//
//	POST/GET /invoke/<kernel>?n=<batch>&backend=<kind>&scheme=<scheme>
//	GET      /healthz   — ok, or 503 once draining; per-shard queue depth
//	GET      /metrics   — telemetry registry snapshot (JSON)
//	GET      /debug/requests — slowest/most-recent phase-attributed requests
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503 so load
// balancers stop sending, in-flight requests finish, then the process
// exits 0. The degradation policies mirror the faassim simulator's:
// bounded admission (429), per-request deadlines (504), and a circuit
// breaker (503) — see internal/server.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/isolation"
	"repro/internal/server"
	"repro/internal/sfi"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use port 0 with -addrfile for an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening")
	kernels := flag.String("kernels", "", "comma-separated kernels to serve (default: all FaaS kernels)")
	backend := flag.String("backend", "", "default isolation backend when a request names none (default colorguard)")
	scheme := flag.String("scheme", "", "default transition scheme when a request names none (default, zerocost, onestack, trampoline)")
	hardenFlag := flag.String("harden", "none", "Spectre hardening for served kernels (none, swivel-sfi, swivel-cet, deterministic)")
	shards := flag.Int("shards", 0, "dispatcher shards (default: min(NumCPU, 8))")
	workers := flag.Int("workers", 0, "worker goroutines per shard (default 1)")
	queue := flag.Int("queue", 0, "bounded queue depth per shard (default 64)")
	maxInFlight := flag.Int("maxinflight", 0, "admission-control limit on in-flight requests (default shards*queue)")
	slots := flag.Int("slots", 0, "instance slots per worker backend (default 4)")
	warm := flag.Int("warm", 0, "initial keep-warm instances per worker backend (0 = default 2, -1 = disable; retargetable at runtime via POST /control/warm)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = none)")
	breakerFails := flag.Int("breakerfails", 32, "consecutive failures that open the circuit breaker")
	breakerOpen := flag.Duration("breakeropen", 2*time.Second, "how long an open breaker rejects before probing")
	drainTimeout := flag.Duration("draintimeout", 10*time.Second, "how long a signal-triggered drain waits for in-flight requests")
	tierFlag := flag.String("tier", "fused", "execution tier for worker instances: slow, fast, or fused")
	spans := flag.Bool("spans", true, "attribute every request's wall time to phases (X-Trace-Id, /debug/requests, serve.phase metrics)")
	tracePath := flag.String("trace", "", "write a Chrome trace of the serving run to this file on drain")
	flag.Parse()

	tier, err := cpu.ParseTier(*tierFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faasd: -tier %s: %v\n", *tierFlag, err)
		os.Exit(2)
	}
	cpu.SetDefaultTier(tier)

	sch, err := isolation.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faasd: -scheme %s: %v\n", *scheme, err)
		os.Exit(2)
	}
	harden, err := sfi.ParseHarden(*hardenFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faasd: -harden %s: %v\n", *hardenFlag, err)
		os.Exit(2)
	}
	sfi.SetDefaultHarden(harden)

	if err := validate(*shards, *workers, *queue, *maxInFlight, *slots, *warm, *timeout, *breakerFails, *breakerOpen, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "faasd:", err)
		os.Exit(2)
	}

	telemetry.SetEnabled(true)
	telemetry.SetSpansEnabled(*spans)
	if *tracePath != "" {
		telemetry.Trace.Enable()
	}
	cfg := server.Config{
		DefaultBackend:  isolation.Kind(*backend),
		DefaultScheme:   sch,
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxInFlight:     *maxInFlight,
		SlotsPerWorker:  *slots,
		WarmPerWorker:   *warm,
		RequestTimeout:  *timeout,
		Breaker: fault.BreakerConfig{
			FailureThreshold:  *breakerFails,
			OpenNs:            float64(*breakerOpen),
			HalfOpenSuccesses: 2,
		},
	}
	if *kernels != "" {
		cfg.Kernels = strings.Split(*kernels, ",")
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasd:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			fmt.Fprintln(os.Stderr, "faasd:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "[faasd listening on %s]\n", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "[faasd %s: draining]\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "faasd:", err)
		os.Exit(1)
	}

	// Drain: stop advertising health, finish in-flight work, then stop
	// accepting and tear down the worker pool.
	s.BeginDrain()
	shutdownDone := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(*drainTimeout)
		for time.Now().Before(deadline) && s.Stats().InFlight > 0 {
			time.Sleep(10 * time.Millisecond)
		}
		shutdownDone <- httpSrv.Close()
	}()
	if err := <-shutdownDone; err != nil {
		fmt.Fprintln(os.Stderr, "faasd: shutdown:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "faasd:", err)
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "faasd:", err)
		os.Exit(1)
	}
	if *tracePath != "" {
		writeTrace(*tracePath)
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "[faasd drained: %d served, %d completed, %d shed, %d timeouts, %d failed]\n",
		st.Requests, st.Completed, st.Shed, st.Timeouts, st.Failed)
}

// writeAddrFile publishes the bound address atomically: a supervisor
// polling the path must never observe a partially written file, so the
// address goes to a temp file in the same directory first and lands via
// rename (atomic on POSIX filesystems).
func writeAddrFile(path, addr string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write([]byte(addr)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeTrace flushes the process tracer to path, warning when the ring
// buffer wrapped — a truncated trace silently read as complete is worse
// than no trace.
func writeTrace(path string) {
	telemetry.Trace.Disable()
	if n := telemetry.Trace.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "[faasd trace: %d events dropped (ring buffer wrapped); the trace is truncated]\n", n)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faasd: trace:", err)
		return
	}
	defer f.Close()
	if err := telemetry.Trace.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "faasd: trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "[faasd trace written to %s]\n", path)
}

// validate rejects nonsensical knob settings before any work starts.
// Zero means "use the default" for the sizing knobs, so only negatives
// (and zero where a default does not exist) are errors.
func validate(shards, workers, queue, maxInFlight, slots, warm int, timeout time.Duration, breakerFails int, breakerOpen, drainTimeout time.Duration) error {
	switch {
	case shards < 0:
		return fmt.Errorf("-shards %d: must be >= 1 (or 0 for the default)", shards)
	case workers < 0:
		return fmt.Errorf("-workers %d: must be >= 1 (or 0 for the default)", workers)
	case queue < 0:
		return fmt.Errorf("-queue %d: must be >= 1 (or 0 for the default)", queue)
	case maxInFlight < 0:
		return fmt.Errorf("-maxinflight %d: must be >= 1 (or 0 for the default)", maxInFlight)
	case slots < 0:
		return fmt.Errorf("-slots %d: must be >= 1 (or 0 for the default)", slots)
	case warm < -1:
		return fmt.Errorf("-warm %d: must be >= 0 (or -1 to disable keep-warm)", warm)
	case timeout < 0:
		return fmt.Errorf("-timeout %v: must be >= 0", timeout)
	case breakerFails < 1:
		return fmt.Errorf("-breakerfails %d: must be >= 1", breakerFails)
	case breakerOpen <= 0:
		return fmt.Errorf("-breakeropen %v: must be positive", breakerOpen)
	case drainTimeout <= 0:
		return fmt.Errorf("-draintimeout %v: must be positive", drainTimeout)
	}
	return nil
}
